//! Figure 7: execution time of the RL training phase on CPU, GPU and PIM
//! for FrozenLake and Taxi — PIM at 2,000 cores (best-performing count),
//! FP32 vs INT32, against CPU-V1, CPU-V2 and the GPU.
//!
//! PIM times come from the cycle-level simulator (extrapolated from a
//! reduced-scale run); CPU and GPU times come from the analytical Table-1
//! models (see DESIGN.md on the substitution). The binary also reports
//! the paper's headline ratios next to the measured ones.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin fig7_cpu_gpu_pim
//! ```

use swiftrl_baselines::cpu_model::{CpuModel, CpuVersion};
use swiftrl_baselines::gpu_model::GpuModel;
use swiftrl_bench::{fmt_ratio, fmt_secs, print_table, Extrapolation, HarnessArgs};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::collect::collect_random;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::taxi::Taxi;
use swiftrl_env::ExperienceDataset;
use swiftrl_rl::sampling::SamplingStrategy;
use std::collections::HashMap;

const PAPER_EPISODES: u32 = 2_000;
const TAU: u32 = 50;
const PIM_CORES: usize = 2_000;

struct EnvCase {
    tag: &'static str,
    paper_transitions: usize,
    dataset: ExperienceDataset,
}

fn main() {
    let args = HarnessArgs::parse(0.01);

    let mut fl = FrozenLake::slippery_4x4();
    let mut taxi = Taxi::new();
    let cases = [
        EnvCase {
            tag: "FL",
            paper_transitions: 1_000_000,
            dataset: collect_random(&mut fl, args.scaled(1_000_000, 10_000), 42),
        },
        EnvCase {
            tag: "Taxi",
            paper_transitions: 5_000_000,
            dataset: collect_random(&mut taxi, args.scaled(5_000_000, 10_000), 42),
        },
    ];

    let cpu = CpuModel::xeon_4110();
    let gpu = GpuModel::rtx_3090();
    let episodes = args.scaled_episodes(PAPER_EPISODES, TAU);

    println!("# Figure 7: CPU vs GPU vs PIM (2,000 PIM cores)\n");

    // pim_times[(env_tag, spec)] = paper-scale seconds
    let mut pim_times: HashMap<(&str, String), f64> = HashMap::new();

    for case in &cases {
        let extra = Extrapolation::new(
            case.paper_transitions,
            case.dataset.len(),
            PAPER_EPISODES,
            episodes,
            TAU,
        );
        let ns = case.dataset.num_states();
        let na = case.dataset.num_actions();
        let total_updates = case.paper_transitions as u64 * PAPER_EPISODES as u64;

        println!("## {} environment\n", case.tag);
        let mut rows = Vec::new();
        for spec in WorkloadSpec::paper_variants() {
            let cfg = RunConfig::paper_defaults()
                .with_dpus(PIM_CORES)
                .with_episodes(episodes)
                .with_tau(TAU)
                .with_seed(args.seed.unwrap_or(0xC0FFEE));
            let outcome = PimRunner::new(spec, cfg)
                .expect("alloc failed")
                .run(&case.dataset)
                .expect("PIM run failed");
            let pim_s = extra.apply(&outcome.breakdown).total_seconds();
            pim_times.insert((case.tag, spec.name()), pim_s);

            let v1 = cpu.training_seconds(CpuVersion::V1, total_updates, ns, na, spec.sampling);
            let v2 = cpu.training_seconds(CpuVersion::V2, total_updates, ns, na, spec.sampling);
            let gpu_s = gpu.training_seconds(
                PAPER_EPISODES as u64,
                case.paper_transitions as u64,
                ns * na,
            );
            rows.push(vec![
                spec.name(),
                fmt_secs(pim_s),
                fmt_secs(v1),
                fmt_secs(v2),
                fmt_secs(gpu_s),
                fmt_ratio(v1 / pim_s),
                fmt_ratio(gpu_s / pim_s),
            ]);
        }
        print_table(
            &[
                "Workload",
                "PIM (2000)",
                "CPU-V1",
                "CPU-V2",
                "GPU",
                "CPU-V1/PIM",
                "GPU/PIM",
            ],
            &rows,
        );
        println!();
    }

    headline_checks(&pim_times, &cpu, &gpu);
    energy_extension(&pim_times, &cpu, &gpu);
}

/// Extension: first-order energy comparison at Table-1 TDPs for the
/// FrozenLake Q-learner (the paper motivates PIM with energy but reports
/// no numbers).
fn energy_extension(pim: &HashMap<(&str, String), f64>, cpu: &CpuModel, gpu: &GpuModel) {
    use swiftrl_baselines::energy;

    let fl_updates = 1_000_000u64 * PAPER_EPISODES as u64;
    let pim_int32 = pim[&("FL", "Q-learner-SEQ-INT32".to_string())];
    let cpu_v1 = cpu.training_seconds(
        CpuVersion::V1,
        fl_updates,
        16,
        4,
        SamplingStrategy::Sequential,
    );
    let gpu_s = gpu.training_seconds(PAPER_EPISODES as u64, 1_000_000, 64);

    println!("\n## Extension: energy estimate, FrozenLake Q-learner (TDP × utilization × time)\n");
    let rows: Vec<Vec<String>> = energy::table1_comparison(pim_int32, cpu_v1, gpu_s)
        .iter()
        .map(|e| {
            vec![
                e.system.clone(),
                fmt_secs(e.seconds),
                format!("{:.0} W", e.watts),
                format!("{:.0} J", e.joules),
            ]
        })
        .collect();
    print_table(&["System", "Time", "Avg power", "Energy"], &rows);
}

fn headline_checks(pim: &HashMap<(&str, String), f64>, cpu: &CpuModel, gpu: &GpuModel) {
    let t = |env: &str, name: &str| pim[&(env, name.to_string())];
    let fl_updates = 1_000_000u64 * PAPER_EPISODES as u64;
    let taxi_updates = 5_000_000u64 * PAPER_EPISODES as u64;

    let cpu_v1 = |ns, na, s| cpu.training_seconds(CpuVersion::V1, fl_updates, ns, na, s);
    let q_seq_fp32 = t("FL", "Q-learner-SEQ-FP32");
    let q_ran_fp32 = t("FL", "Q-learner-RAN-FP32");
    let q_seq_int32 = t("FL", "Q-learner-SEQ-INT32");
    let s_seq_fp32 = t("FL", "SARSA-SEQ-FP32");
    let s_seq_int32 = t("FL", "SARSA-SEQ-INT32");
    let gpu_fl = gpu.training_seconds(PAPER_EPISODES as u64, 1_000_000, 64);

    let taxi_fp32_avg = ["SEQ", "RAN", "STR"]
        .iter()
        .map(|s| t("Taxi", &format!("Q-learner-{s}-FP32")))
        .sum::<f64>()
        / 3.0;
    let taxi_cpu_v1_avg = [
        SamplingStrategy::Sequential,
        SamplingStrategy::Random,
        SamplingStrategy::paper_stride(),
    ]
    .iter()
    .map(|&s| cpu.training_seconds(CpuVersion::V1, taxi_updates, 500, 6, s))
    .sum::<f64>()
        / 3.0;

    println!("## Headline ratios (paper vs this reproduction)\n");
    let rows = vec![
        vec![
            "Q-SEQ-FP32-FL faster than CPU-V1".into(),
            "1.84×".into(),
            fmt_ratio(cpu_v1(16, 4, SamplingStrategy::Sequential) / q_seq_fp32),
        ],
        vec![
            "SARSA-SEQ-FP32-FL faster than CPU-V1".into(),
            "2.08×".into(),
            fmt_ratio(cpu_v1(16, 4, SamplingStrategy::Sequential) / s_seq_fp32),
        ],
        vec![
            "Q-RAN-FP32-FL faster than CPU-V1".into(),
            "1.96×".into(),
            fmt_ratio(cpu_v1(16, 4, SamplingStrategy::Random) / q_ran_fp32),
        ],
        vec![
            "Q-SEQ-INT32 faster than Q-SEQ-FP32 (FL)".into(),
            "8.16×".into(),
            fmt_ratio(q_seq_fp32 / q_seq_int32),
        ],
        vec![
            "SARSA-SEQ-INT32 faster than SARSA-SEQ-FP32 (FL)".into(),
            "4.73×".into(),
            fmt_ratio(s_seq_fp32 / s_seq_int32),
        ],
        vec![
            "GPU faster than Q-SEQ-FP32-FL".into(),
            "1.68×".into(),
            fmt_ratio(q_seq_fp32 / gpu_fl),
        ],
        vec![
            "Q-SEQ-INT32-FL faster than GPU".into(),
            "4.84×".into(),
            fmt_ratio(gpu_fl / q_seq_int32),
        ],
        vec![
            "Taxi: PIM-FP32 speed relative to CPU-V1 (paper: 0.64×, slower)".into(),
            "0.64×".into(),
            fmt_ratio(taxi_cpu_v1_avg / taxi_fp32_avg),
        ],
    ];
    print_table(&["Claim", "Paper", "Measured"], &rows);
}
