//! §4.4 — multi-agent Q-learning scaling: 1,000 / 2,000 independent
//! agents (10,000 FrozenLake transitions each, 2,000 episodes) on one
//! PIM core per agent, against the paper's measured Xeon baseline.
//!
//! Both comparators run through the [`TrainingBackend`] trait:
//! [`MultiAgentRunner`] (one learner per DPU) against
//! [`CpuMultiAgentBackend`] (Table 1 Xeon model).
//!
//! Paper: CPU takes ≈996.52 s (1,000 agents) and ≈1,943.78 s (2,000);
//! SwiftRL achieves ≈11.23× and ≈21.92× speedup respectively.
//!
//! ```text
//! cargo run --release -p swiftrl-bench --bin multi_agent_scaling
//! ```

use swiftrl_baselines::cpu_model::CpuModel;
use swiftrl_bench::{fmt_ratio, fmt_secs, print_table, HarnessArgs};
use swiftrl_core::backend::{
    BackendStats, CpuMultiAgentBackend, MultiAgentRunner, TrainingBackend,
};
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_env::collect::collect_per_agent;
use swiftrl_env::frozen_lake::FrozenLake;
use swiftrl_env::ExperienceDataset;

const PAPER_TRANSITIONS_PER_AGENT: usize = 10_000;
const PAPER_EPISODES: u32 = 2_000;
/// Paper measurements for (agents, cpu_seconds, speedup).
const PAPER_POINTS: [(usize, f64, f64); 2] = [(1_000, 996.52, 11.23), (2_000, 1_943.78, 21.92)];

fn main() {
    let args = HarnessArgs::parse(0.05);

    // Reduced-scale simulation: fewer agents (kernel time is agent-count
    // invariant — one agent per DPU) and a smaller per-agent workload.
    let sim_agents = args.scaled(64, 8).min(256);
    let transitions = args.scaled(PAPER_TRANSITIONS_PER_AGENT, 500);
    let episodes = args.scaled_episodes(PAPER_EPISODES, 50);

    let mut env = FrozenLake::slippery_4x4();
    // The backend interface takes one combined dataset; the runner
    // re-splits it into equal contiguous per-agent chunks, which
    // round-trips the per-agent collection exactly.
    let datasets = collect_per_agent(&mut env, sim_agents, transitions, 42);
    let mut combined = ExperienceDataset::new(
        datasets[0].env_name(),
        datasets[0].num_states(),
        datasets[0].num_actions(),
    );
    for d in &datasets {
        combined.extend(d.transitions().iter().copied());
    }

    let spec = WorkloadSpec::q_learning_seq_int32();
    let cfg = RunConfig::paper_defaults()
        .with_episodes(episodes)
        .with_tau(episodes);
    let cpu = CpuModel::xeon_4110();

    // The two comparators of the figure, behind one interface.
    let pim_backend: Box<dyn TrainingBackend> =
        Box::new(MultiAgentRunner::new(spec, cfg, sim_agents).expect("bad agent count"));
    let cpu_backend: Box<dyn TrainingBackend> = Box::new(
        CpuMultiAgentBackend::new(cpu, sim_agents, episodes).expect("bad agent count"),
    );

    let pim_report = pim_backend
        .train(&combined)
        .expect("multi-agent run failed");
    let cpu_report = cpu_backend.train(&combined).expect("CPU model failed");

    // Per-agent work extrapolation for the kernel; transfers scale with
    // agents × per-agent bytes. The CPU model is exactly linear in
    // agents × updates, so the simulated-scale figure extrapolates to
    // paper scale by the same two factors.
    let update_factor = (PAPER_TRANSITIONS_PER_AGENT as f64 * PAPER_EPISODES as f64)
        / (transitions as f64 * episodes as f64);

    println!("# §4.4 Multi-agent Q-learning scaling ({spec})\n");
    println!(
        "simulated {sim_agents} agents × {transitions} transitions × {episodes} episodes; \
         extrapolated to paper scale below\n"
    );

    let mut rows = Vec::new();
    for (agents, paper_cpu_s, paper_speedup) in PAPER_POINTS {
        let agents_ratio = agents as f64 / sim_agents as f64;
        let xfer_factor = agents_ratio * PAPER_TRANSITIONS_PER_AGENT as f64 / transitions as f64;
        let b = &pim_report.breakdown;
        let pim_s = b.pim_kernel_s * update_factor
            + b.program_load_s * agents_ratio
            + (b.cpu_pim_s - b.program_load_s) * xfer_factor
            + b.pim_cpu_s * agents_ratio;
        let cpu_model_s = cpu_report.total_seconds() * agents_ratio * update_factor;
        rows.push(vec![
            agents.to_string(),
            format!("{} (paper {paper_cpu_s:.2}s)", fmt_secs(cpu_model_s)),
            fmt_secs(pim_s),
            format!("{} (paper {paper_speedup}×)", fmt_ratio(cpu_model_s / pim_s)),
        ]);
    }
    print_table(
        &["Agents", "CPU (modelled)", "PIM (simulated)", "Speedup"],
        &rows,
    );

    let agent_tables = match &pim_report.stats {
        BackendStats::MultiAgent { q_tables } => q_tables.len(),
        other => panic!("expected MultiAgent stats, got {other:?}"),
    };
    println!(
        "\nIndependence check: {} per-agent Q-tables returned, no inter-PIM \
         communication time ({}s).",
        agent_tables, pim_report.breakdown.inter_pim_s
    );
}
