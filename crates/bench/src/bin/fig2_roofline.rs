//! Figure 2: roofline model of the RL workloads' CPU versions on an
//! Intel i7-9700K — all four points (Q/SARSA × 1M/20M transitions) land
//! in the memory-bound region, motivating PIM.
//!
//! ```text
//! cargo run -p swiftrl-bench --bin fig2_roofline
//! ```

use swiftrl_baselines::roofline::{figure2_machine, figure2_points};
use swiftrl_bench::print_table;

fn main() {
    let machine = figure2_machine();
    println!("# Figure 2: Roofline model of RL workloads\n");
    println!("Machine: {machine}");
    println!(
        "Ridge point (machine balance): {:.2} FLOP/byte\n",
        machine.peak_gops / machine.memory_bandwidth_gbps
    );

    let rows: Vec<Vec<String>> = figure2_points()
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.3}", p.arithmetic_intensity),
                format!("{:.1}", p.attainable_gflops),
                if p.memory_bound {
                    "memory-bound".into()
                } else {
                    "compute-bound".into()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "Workload",
            "Arithmetic intensity (FLOP/B)",
            "Attainable GFLOPS",
            "Region",
        ],
        &rows,
    );

    println!(
        "\nPaper: both the Q-learner and SARSA-learner CPU versions sit in \
         the memory-bound region at 1M and 20M transitions."
    );
    let all_memory_bound = figure2_points().iter().all(|p| p.memory_bound);
    println!(
        "Measured: all points memory-bound = {all_memory_bound} — {}",
        if all_memory_bound { "MATCHES" } else { "DEVIATES" }
    );
}
