//! Shared harness utilities for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the SwiftRL paper. By
//! default the experiments run at a *reduced scale* (smaller dataset,
//! fewer episodes) that finishes in seconds on a laptop; because the
//! simulated-time components scale linearly in the reduced dimensions,
//! each binary also reports the extrapolation to the paper's full
//! parameters. Pass `--paper-scale` to run the actual full-size
//! experiment (hours of host CPU time), or `--scale <f>` for anything in
//! between.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scaling;

use swiftrl_core::breakdown::TimeBreakdown;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Scale factor applied to dataset size and episode count (1.0 =
    /// paper scale).
    pub scale: f64,
    /// DPU counts to sweep (defaults to the figure's own set).
    pub dpus: Option<Vec<usize>>,
    /// Override the RNG seed.
    pub seed: Option<u32>,
    /// Write a Chrome `trace_event` JSON of the sweep's PIM runs here
    /// (a metrics snapshot lands next to it with a `.metrics.json`
    /// extension). `None` leaves telemetry disabled — a true zero on the
    /// launch hot path.
    pub trace: Option<std::path::PathBuf>,
    /// Write the sweep's `MetricsSnapshot` bundle (schema
    /// `swiftrl-metrics-bundle-v1`, per-run `swiftrl-metrics-v3`
    /// snapshots) to this exact path, independent of `--trace`.
    /// Either flag enables telemetry; neither leaves it a true zero.
    pub metrics: Option<std::path::PathBuf>,
}

impl HarnessArgs {
    /// Whether any observability output was requested (telemetry must
    /// be recorded for the sweep).
    pub fn observability_on(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Parses `std::env::args()`.
    ///
    /// Supported flags: `--scale <f64>`, `--paper-scale`,
    /// `--dpus <a,b,c>`, `--seed <u32>`, `--trace <path>`,
    /// `--metrics <path>`, `--help`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse(default_scale: f64) -> Self {
        fn usage(msg: &str) -> ! {
            panic!("{msg}; try --help")
        }
        let mut out = Self {
            scale: default_scale,
            dpus: None,
            seed: None,
            trace: None,
            metrics: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_else(|| usage("--scale needs a value"));
                    out.scale = v.parse().unwrap_or_else(|_| usage("--scale must be a float"));
                    assert!(out.scale > 0.0 && out.scale <= 1.0, "--scale must be in (0, 1]");
                }
                "--paper-scale" => out.scale = 1.0,
                "--dpus" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--dpus needs a comma-separated list"));
                    out.dpus = Some(
                        v.split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .unwrap_or_else(|_| usage("--dpus must be integers"))
                            })
                            .collect(),
                    );
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    out.seed = Some(v.parse().unwrap_or_else(|_| usage("--seed must be a u32")));
                }
                "--trace" => {
                    let v = args.next().unwrap_or_else(|| usage("--trace needs a path"));
                    out.trace = Some(std::path::PathBuf::from(v));
                }
                "--metrics" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--metrics needs a path"));
                    out.metrics = Some(std::path::PathBuf::from(v));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <f in (0,1]> | --paper-scale | --dpus <a,b,c> | \
                         --seed <u32> | --trace <path> | --metrics <path>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        out
    }

    /// Scales an integer quantity, keeping at least `min`.
    pub fn scaled(&self, paper_value: usize, min: usize) -> usize {
        ((paper_value as f64 * self.scale).round() as usize).max(min)
    }

    /// Scales an episode count so it stays a positive multiple of `tau`.
    pub fn scaled_episodes(&self, paper_episodes: u32, tau: u32) -> u32 {
        let raw = (paper_episodes as f64 * self.scale).round() as u32;
        (raw.div_ceil(tau)).max(1) * tau
    }
}

/// Linear extrapolation factors from a reduced-scale run to paper scale.
///
/// The simulator's time components are exactly linear in the quantities
/// below, so the extrapolated breakdown equals what the full-size run
/// would report.
#[derive(Debug, Clone, Copy)]
pub struct Extrapolation {
    /// paper_updates / run_updates (kernel time factor).
    pub updates: f64,
    /// paper_rounds / run_rounds (inter-PIM sync factor).
    pub rounds: f64,
    /// paper_dataset_bytes / run_dataset_bytes (CPU→PIM factor).
    pub dataset: f64,
}

impl Extrapolation {
    /// Builds factors from paper-vs-run dataset sizes and episode counts
    /// at a fixed synchronization period `tau`.
    ///
    /// The inter-PIM component is dominated by the *intermediate*
    /// synchronizations (one fewer than the number of rounds), so its
    /// factor uses `rounds - 1` on both sides.
    pub fn new(
        paper_transitions: usize,
        run_transitions: usize,
        paper_episodes: u32,
        run_episodes: u32,
        tau: u32,
    ) -> Self {
        let updates = (paper_transitions as f64 * paper_episodes as f64)
            / (run_transitions as f64 * run_episodes as f64);
        let paper_syncs = (paper_episodes / tau).saturating_sub(1).max(1) as f64;
        let run_syncs = (run_episodes / tau).saturating_sub(1).max(1) as f64;
        Self {
            updates,
            rounds: paper_syncs / run_syncs,
            dataset: paper_transitions as f64 / run_transitions as f64,
        }
    }

    /// No-op extrapolation (already at paper scale).
    pub fn identity() -> Self {
        Self {
            updates: 1.0,
            rounds: 1.0,
            dataset: 1.0,
        }
    }

    /// Applies the factors to a measured breakdown. The one-time program
    /// load inside the CPU→PIM component is scale-invariant and is kept
    /// as-is; only the data-dependent remainder scales with the dataset.
    pub fn apply(&self, b: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            pim_kernel_s: b.pim_kernel_s * self.updates,
            cpu_pim_s: b.program_load_s + (b.cpu_pim_s - b.program_load_s) * self.dataset,
            pim_cpu_s: b.pim_cpu_s,
            inter_pim_s: b.inter_pim_s * self.rounds,
            program_load_s: b.program_load_s,
        }
    }
}

/// Writes a JSON artifact with the shared bench formatting: pretty
/// rendering (stable key order, trailing newline) self-validated with
/// the telemetry parser before anything touches disk, so a malformed
/// document can never be written. Creates parent directories as needed.
///
/// # Errors
///
/// I/O failures propagate; a render that fails to re-parse (a bug in
/// the builder, not the caller) surfaces as `InvalidData`.
pub fn write_json_artifact(path: &std::path::Path, doc: &swiftrl_telemetry::Json) -> std::io::Result<()> {
    let rendered = doc.render_pretty();
    if let Err(e) = swiftrl_telemetry::json::parse(&rendered) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("rendered JSON failed self-validation: {e}"),
        ));
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, rendered)
}

/// Writes a pre-rendered Chrome `trace_event` document, validating it
/// with the telemetry parser first (same guarantee as
/// [`write_json_artifact`], for the exporter's already-serialized
/// output). Creates parent directories as needed.
///
/// # Errors
///
/// I/O failures propagate; an exporter bug that yields unparsable JSON
/// surfaces as `InvalidData`.
pub fn write_trace_artifact(path: &std::path::Path, rendered: &str) -> std::io::Result<()> {
    if let Err(e) = swiftrl_telemetry::json::parse(rendered) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("rendered trace failed self-validation: {e}"),
        ));
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, rendered)
}

/// The metrics-snapshot path that rides along with a `--trace <path>`
/// Chrome trace: the same path with a `.metrics.json` extension.
pub fn metrics_sibling(trace_path: &std::path::Path) -> std::path::PathBuf {
    trace_path.with_extension("metrics.json")
}

/// Prints a GitHub-flavoured markdown table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Formats seconds compactly (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s < 1.0e-3 {
        format!("{:.1}µs", s * 1.0e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1.0e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a ratio as `N.NN×`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}×")
}

/// A `num / den` ratio as a JSON value, with the division-by-zero and
/// NaN cases made explicit: any non-finite result (zero or non-finite
/// denominator, non-finite numerator) is emitted as `null` rather than
/// relying on the renderer's non-finite fallback. Benchmark artifacts
/// must never contain non-finite numbers — `tests/artifact_compat.rs`
/// rejects them.
pub fn ratio_json(num: f64, den: f64) -> swiftrl_telemetry::Json {
    let ratio = num / den;
    if ratio.is_finite() {
        swiftrl_telemetry::Json::Num(ratio)
    } else {
        swiftrl_telemetry::Json::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_keeps_minimum() {
        let a = HarnessArgs {
            scale: 0.001,
            dpus: None,
            seed: None,
            trace: None,
            metrics: None,
        };
        assert_eq!(a.scaled(1_000, 50), 50);
        assert_eq!(a.scaled(1_000_000, 50), 1_000);
    }

    #[test]
    fn scaled_episodes_stay_tau_multiples() {
        let a = HarnessArgs {
            scale: 0.03,
            dpus: None,
            seed: None,
            trace: None,
            metrics: None,
        };
        let e = a.scaled_episodes(2_000, 50);
        assert_eq!(e % 50, 0);
        assert!(e >= 50);
    }

    #[test]
    fn extrapolation_factors() {
        let e = Extrapolation::new(1_000_000, 20_000, 2_000, 100, 50);
        assert!((e.updates - 1_000.0).abs() < 1e-9);
        // 40 rounds → 39 intermediate syncs vs 2 rounds → 1.
        assert!((e.rounds - 39.0).abs() < 1e-9);
        assert!((e.dataset - 50.0).abs() < 1e-9);
        let b = TimeBreakdown {
            pim_kernel_s: 1.0,
            cpu_pim_s: 1.5,
            pim_cpu_s: 1.0,
            inter_pim_s: 1.0,
            program_load_s: 0.5,
        };
        let x = e.apply(&b);
        assert_eq!(x.pim_kernel_s, 1_000.0);
        // Program load (0.5s) stays; the 1.0s data part scales by 50×.
        assert_eq!(x.cpu_pim_s, 0.5 + 50.0);
        assert_eq!(x.pim_cpu_s, 1.0);
        assert_eq!(x.inter_pim_s, 39.0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(2.5e-6), "2.5µs");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(3.25), "3.25s");
        assert_eq!(fmt_ratio(8.16), "8.16×");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
