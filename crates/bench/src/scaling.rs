//! Shared driver for the strong-scaling figures (Figs. 5 and 6).

use crate::{
    fmt_secs, metrics_sibling, print_table, write_json_artifact, write_trace_artifact,
    Extrapolation, HarnessArgs,
};
use swiftrl_core::backend::TrainingBackend;
use swiftrl_core::config::{RunConfig, WorkloadSpec};
use swiftrl_core::runner::PimRunner;
use swiftrl_env::ExperienceDataset;
use swiftrl_telemetry::{chrome_trace_multi, snapshot_bundle, Event, MetricsSnapshot, Telemetry};

/// The DPU counts swept by Figures 5 and 6.
pub const PAPER_DPU_COUNTS: [usize; 5] = [125, 250, 500, 1_000, 2_000];

/// The fleet-scaling sweep: the paper's figure counts extended through
/// the full 2,524-DPU fleet the paper evaluates on, plus one
/// past-paper point to show headroom.
pub const FLEET_DPU_COUNTS: [usize; 7] = [125, 250, 500, 1_000, 2_000, 2_524, 4_096];

/// Parameters of one strong-scaling figure.
#[derive(Debug, Clone)]
pub struct ScalingFigure {
    /// Figure label, e.g. `Figure 5`.
    pub figure: &'static str,
    /// Environment name for the headline.
    pub env: &'static str,
    /// The paper's dataset size for this environment.
    pub paper_transitions: usize,
    /// The paper's episode count (2,000).
    pub paper_episodes: u32,
    /// The paper's synchronization period (50).
    pub tau: u32,
}

/// Measured + extrapolated result of one (variant, DPU count) cell.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Workload variant.
    pub spec: WorkloadSpec,
    /// DPU count.
    pub dpus: usize,
    /// Breakdown extrapolated to paper scale.
    pub breakdown: swiftrl_core::breakdown::TimeBreakdown,
}

/// Runs the full sweep and prints the figure's tables. Returns every
/// cell for downstream analysis.
///
/// # Panics
///
/// Panics if a PIM run fails (kernel fault or misconfiguration).
pub fn run_scaling_figure(
    fig: &ScalingFigure,
    dataset: &ExperienceDataset,
    args: &HarnessArgs,
) -> Vec<ScalingCell> {
    // At least two rounds so the inter-PIM component is measurable (its
    // extrapolation scales with intermediate synchronizations).
    let episodes = args
        .scaled_episodes(fig.paper_episodes, fig.tau)
        .max(2 * fig.tau);
    let extra = Extrapolation::new(
        fig.paper_transitions,
        dataset.len(),
        fig.paper_episodes,
        episodes,
        fig.tau,
    );
    let dpu_counts: Vec<usize> = args
        .dpus
        .clone()
        .unwrap_or_else(|| PAPER_DPU_COUNTS.to_vec());

    println!(
        "# {}: strong scaling of RL workloads, {} environment\n",
        fig.figure, fig.env
    );
    println!(
        "run scale: {} transitions × {episodes} episodes (paper: {} × {}); \
         τ = {}; all times below are extrapolated to paper scale\n",
        dataset.len(),
        fig.paper_transitions,
        fig.paper_episodes,
        fig.tau
    );

    let mut cells = Vec::new();
    // One (label, event stream) pair per traced run; empty when tracing
    // is off, in which case every runner keeps the disabled sink and the
    // launch hot path stays allocation-free.
    let mut traced: Vec<(String, Vec<Event>)> = Vec::new();
    for spec in WorkloadSpec::paper_variants() {
        let mut rows = Vec::new();
        let mut first_total = None;
        let mut last_total = None;
        for &dpus in &dpu_counts {
            let cfg = RunConfig::paper_defaults()
                .with_dpus(dpus)
                .with_episodes(episodes)
                .with_tau(fig.tau)
                .with_seed(args.seed.unwrap_or(0xC0FFEE));
            let telemetry = if args.observability_on() {
                Telemetry::enabled()
            } else {
                Telemetry::disabled()
            };
            let backend: Box<dyn TrainingBackend> = Box::new(
                PimRunner::new(spec, cfg)
                    .unwrap_or_else(|e| panic!("DPU allocation failed: {e}"))
                    .with_telemetry(telemetry.clone()),
            );
            let report = backend
                .train(dataset)
                .unwrap_or_else(|e| panic!("PIM run failed: {e}"));
            if args.observability_on() {
                traced.push((format!("{spec} @ {dpus} DPUs"), telemetry.events()));
            }
            let b = extra.apply(&report.breakdown);
            rows.push(vec![
                dpus.to_string(),
                fmt_secs(b.pim_kernel_s),
                fmt_secs(b.cpu_pim_s),
                fmt_secs(b.pim_cpu_s),
                fmt_secs(b.inter_pim_s),
                fmt_secs(b.total_seconds()),
            ]);
            if first_total.is_none() {
                first_total = Some(b.total_seconds());
            }
            last_total = Some(b.total_seconds());
            cells.push(ScalingCell {
                spec,
                dpus,
                breakdown: b,
            });
        }
        println!("## {spec}\n");
        print_table(
            &["PIM cores", "PIM kernel", "CPU-PIM", "PIM-CPU", "Inter-PIM", "Total"],
            &rows,
        );
        if let (Some(first), Some(last), [lo_dpus, .., hi_dpus]) =
            (first_total, last_total, dpu_counts.as_slice())
        {
            println!(
                "\nspeedup {lo_dpus}→{hi_dpus} cores: {:.2}×\n",
                first / last
            );
        }
    }

    summarize(&cells, &dpu_counts);
    if let Some(path) = &args.trace {
        write_trace_artifacts(fig, path, &traced);
    }
    if let Some(path) = &args.metrics {
        write_metrics_bundle(fig, path, &traced);
    }
    cells
}

/// Writes the Chrome trace (all runs, one process lane each) and the
/// metrics-snapshot bundle next to it.
fn write_trace_artifacts(fig: &ScalingFigure, path: &std::path::Path, traced: &[(String, Vec<Event>)]) {
    let runs: Vec<(String, &[Event])> = traced
        .iter()
        .map(|(label, events)| (label.clone(), events.as_slice()))
        .collect();
    write_trace_artifact(path, &chrome_trace_multi(&runs))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    let snapshots: Vec<MetricsSnapshot> = traced
        .iter()
        .map(|(label, events)| MetricsSnapshot::from_events(label.clone(), events))
        .collect();
    let metrics_path = metrics_sibling(path);
    write_json_artifact(&metrics_path, &snapshot_bundle(fig.figure, &snapshots))
        .unwrap_or_else(|e| panic!("writing {}: {e}", metrics_path.display()));
    println!(
        "\ntrace: {} ({} runs); metrics: {}",
        path.display(),
        runs.len(),
        metrics_path.display()
    );
}

/// Writes the metrics-snapshot bundle at an explicit `--metrics` path
/// (independent of `--trace`, which writes a sibling bundle of its own).
fn write_metrics_bundle(fig: &ScalingFigure, path: &std::path::Path, traced: &[(String, Vec<Event>)]) {
    let snapshots: Vec<MetricsSnapshot> = traced
        .iter()
        .map(|(label, events)| MetricsSnapshot::from_events(label.clone(), events))
        .collect();
    write_json_artifact(path, &snapshot_bundle(fig.figure, &snapshots))
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nmetrics: {} ({} runs)", path.display(), snapshots.len());
}

fn summarize(cells: &[ScalingCell], dpu_counts: &[usize]) {
    let &[lo, .., hi] = dpu_counts else {
        return; // fewer than two counts: no speedup to report
    };
    let mut kernel_speedups = Vec::new();
    for spec in WorkloadSpec::paper_variants() {
        let t = |d: usize| {
            cells
                .iter()
                .find(|c| c.spec == spec && c.dpus == d)
                .map(|c| c.breakdown.pim_kernel_s)
        };
        if let (Some(a), Some(b)) = (t(lo), t(hi)) {
            if b > 0.0 {
                kernel_speedups.push(a / b);
            }
        }
    }
    if !kernel_speedups.is_empty() {
        let mean = kernel_speedups.iter().sum::<f64>() / kernel_speedups.len() as f64;
        println!(
            "## Summary: mean PIM-kernel speedup {lo}→{hi} cores across all 12 \
             workloads: {mean:.2}× (paper: >15× for 125→2,000, near-linear)"
        );
    }
}
