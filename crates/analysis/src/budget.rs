//! Constant evaluation and the memory-layout rules.
//!
//! * **K004** — every `*_OFFSET` / `*_BYTES` layout constant is 8-byte
//!   aligned (the UPMEM DMA granule).
//! * **K009** — WRAM region constants (`WRAM_<X>_OFFSET` paired with
//!   `WRAM_<X>_BYTES` in the same file) describe non-overlapping regions
//!   that fit the 64 KB per-DPU WRAM.
//! * **K010** — the same proof for `MRAM_<X>_*` regions against the
//!   per-bank MRAM capacity.
//!
//! Capacities are resolved from the workspace constants
//! `WRAM_CAPACITY_BYTES` / `MRAM_BANK_CAPACITY_BYTES` (exported by
//! `crates/pim/src/config.rs`), falling back to the UPMEM defaults
//! (64 KB / 64 MB) when analyzing an isolated file.
//!
//! The evaluator handles the constant-expression subset the workspace
//! actually uses: integer literals, references to other constants, `+`,
//! `-`, `*`, `<<`, parentheses, and `as` casts. Anything else resolves to
//! `None` and is skipped rather than misjudged.

use std::collections::{BTreeSet, HashMap};
use std::path::Path;

use crate::rules::Finding;
use crate::scanner::{matching_delim, Token, TokenKind};

/// Default WRAM capacity (bytes) when the workspace constant is absent.
pub const DEFAULT_WRAM_CAPACITY: u64 = 64 * 1024;
/// Default per-bank MRAM capacity (bytes) when the workspace constant is absent.
pub const DEFAULT_MRAM_CAPACITY: u64 = 64 * 1024 * 1024;

/// One `const NAME: TY = EXPR;` definition.
pub struct ConstDef {
    /// 1-based line of the name.
    pub line: u32,
    /// Token range `[start, end)` of the initializer expression.
    pub expr: (usize, usize),
}

/// Collects `const NAME: TY = EXPR;` definitions (at any nesting depth).
pub fn collect_consts<'s>(tokens: &'s [Token<'s>]) -> HashMap<&'s str, ConstDef> {
    let mut defs = HashMap::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("const")
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 2].is_punct(':')
        {
            let name = tokens[i + 1].text;
            let line = tokens[i + 1].line;
            // Skip the type annotation up to the `=` (or bail at `;`).
            let mut j = i + 3;
            while j < tokens.len() && !tokens[j].is_punct('=') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('=') {
                let expr_start = j + 1;
                let mut k = expr_start;
                let mut depth = 0i32;
                while k < tokens.len() {
                    if tokens[k].is_punct('(') || tokens[k].is_punct('[') {
                        depth += 1;
                    } else if tokens[k].is_punct(')') || tokens[k].is_punct(']') {
                        depth -= 1;
                    } else if tokens[k].is_punct(';') && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                defs.insert(name, ConstDef { line, expr: (expr_start, k) });
                i = k;
                continue;
            }
        }
        i += 1;
    }
    defs
}

/// Evaluates a small constant-expression subset: integer literals, names of
/// other constants (same file first, then the workspace-global map),
/// parentheses, `+`, `-`, `*`, `<<`. Returns `None` for anything it does
/// not understand (method calls, paths, ...).
pub struct ConstEval<'s, 'd> {
    /// The file's token stream.
    pub tokens: &'s [Token<'s>],
    /// Same-file constant definitions.
    pub defs: &'d HashMap<&'s str, ConstDef>,
    /// Workspace-global resolved constants (cross-file references).
    pub globals: &'d HashMap<String, u64>,
    /// Memoized resolutions.
    pub memo: HashMap<&'s str, Option<u64>>,
    /// Cycle guard.
    pub visiting: BTreeSet<String>,
}

impl<'s, 'd> ConstEval<'s, 'd> {
    /// Creates an evaluator over one file's constants.
    pub fn new(
        tokens: &'s [Token<'s>],
        defs: &'d HashMap<&'s str, ConstDef>,
        globals: &'d HashMap<String, u64>,
    ) -> Self {
        ConstEval { tokens, defs, globals, memo: HashMap::new(), visiting: BTreeSet::new() }
    }

    /// Resolves a constant by name.
    pub fn resolve(&mut self, name: &'s str) -> Option<u64> {
        if let Some(v) = self.memo.get(name) {
            return *v;
        }
        if self.visiting.contains(name) {
            return None; // cycle
        }
        self.visiting.insert(name.to_string());
        let v = match self.defs.get(name).map(|d| d.expr) {
            Some((s, e)) => self.eval_range(s, e),
            None => self.globals.get(name).copied(),
        };
        self.visiting.remove(name);
        self.memo.insert(name, v);
        v
    }

    fn eval_range(&mut self, start: usize, end: usize) -> Option<u64> {
        let mut pos = start;
        let v = self.shift(&mut pos, end)?;
        if pos == end {
            Some(v)
        } else {
            None // trailing tokens we do not understand
        }
    }

    fn shift(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        let mut acc = self.additive(pos, end)?;
        while *pos + 1 < end
            && self.tokens[*pos].is_punct('<')
            && self.tokens[*pos + 1].is_punct('<')
        {
            *pos += 2;
            let rhs = self.additive(pos, end)?;
            acc = acc.checked_shl(u32::try_from(rhs).ok()?)?;
        }
        Some(acc)
    }

    fn additive(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        let mut acc = self.multiplicative(pos, end)?;
        while *pos < end {
            if self.tokens[*pos].is_punct('+') {
                *pos += 1;
                acc = acc.checked_add(self.multiplicative(pos, end)?)?;
            } else if self.tokens[*pos].is_punct('-') {
                *pos += 1;
                acc = acc.checked_sub(self.multiplicative(pos, end)?)?;
            } else {
                break;
            }
        }
        Some(acc)
    }

    fn multiplicative(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        let mut acc = self.atom(pos, end)?;
        while *pos < end && self.tokens[*pos].is_punct('*') {
            *pos += 1;
            acc = acc.checked_mul(self.atom(pos, end)?)?;
        }
        Some(acc)
    }

    fn atom(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        if *pos >= end {
            return None;
        }
        let t = &self.tokens[*pos];
        let v = if t.is_punct('(') {
            let close = matching_delim(self.tokens, *pos, '(', ')');
            if close >= end {
                return None;
            }
            let inner = self.eval_range(*pos + 1, close)?;
            *pos = close + 1;
            inner
        } else if t.kind == TokenKind::IntLit {
            *pos += 1;
            parse_int(t.text)?
        } else if t.kind == TokenKind::Ident {
            // Path expressions (`swiftrl_pim::config::CAP`) resolve by
            // their last segment: constant names are workspace-unique.
            let mut name = t.text;
            *pos += 1;
            while *pos + 2 < end
                && self.tokens[*pos].is_punct(':')
                && self.tokens[*pos + 1].is_punct(':')
                && self.tokens[*pos + 2].kind == TokenKind::Ident
            {
                name = self.tokens[*pos + 2].text;
                *pos += 3;
            }
            self.resolve(name)?
        } else {
            return None;
        };
        // Tolerate a trailing `as <type>` cast.
        if *pos + 1 < end && self.tokens[*pos].is_ident("as") {
            if self.tokens[*pos + 1].kind == TokenKind::Ident {
                *pos += 2;
            } else {
                return None;
            }
        }
        Some(v)
    }
}

/// Parses a Rust integer literal (underscores, radix prefixes, suffixes).
pub fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (body, radix): (&str, u32) = if let Some(rest) = clean.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = clean.strip_prefix("0b") {
        (rest, 2)
    } else if let Some(rest) = clean.strip_prefix("0o") {
        (rest, 8)
    } else {
        (clean.as_str(), 10)
    };
    // Split the digits from any type suffix (`u32`, `usize`, ...).
    let end = body
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(body.len());
    u64::from_str_radix(&body[..end], radix).ok()
}

/// Evaluates every resolvable constant of a file into `(name, value)` pairs.
/// Used to build the workspace-global constant map before the budget pass.
pub fn resolvable_consts(tokens: &[Token<'_>]) -> Vec<(String, u64)> {
    let defs = collect_consts(tokens);
    let empty = HashMap::new();
    let mut eval = ConstEval::new(tokens, &defs, &empty);
    let mut names: Vec<&str> = defs.keys().copied().collect();
    names.sort_unstable();
    names
        .into_iter()
        .filter_map(|n| eval.resolve(n).map(|v| (n.to_string(), v)))
        .collect()
}

/// K004: flags `*_OFFSET` / `*_BYTES` constants not divisible by 8.
pub fn check_alignment(
    file: &Path,
    tokens: &[Token<'_>],
    globals: &HashMap<String, u64>,
    findings: &mut Vec<Finding>,
) {
    let defs = collect_consts(tokens);
    let mut eval = ConstEval::new(tokens, &defs, globals);
    let mut names: Vec<&str> = defs
        .keys()
        .copied()
        .filter(|n| n.ends_with("_OFFSET") || n.ends_with("_BYTES"))
        .collect();
    names.sort_unstable();
    for name in names {
        if let Some(v) = eval.resolve(name) {
            if v % 8 != 0 {
                let line = eval.defs.get(name).map_or(0, |d| d.line);
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "K004",
                    message: format!(
                        "layout constant `{name}` = {v} is not 8-byte aligned \
                         (DMA granule)",
                    ),
                });
            }
        }
    }
}

/// A declared memory region: `<PREFIX>_<X>_OFFSET` + `<PREFIX>_<X>_BYTES`.
struct Region<'s> {
    name: &'s str,
    line: u32,
    offset: u64,
    bytes: u64,
}

/// Gathers the regions a file declares for one prefix (`WRAM` / `MRAM`).
fn regions_for<'s>(
    prefix: &str,
    defs: &HashMap<&'s str, ConstDef>,
    eval: &mut ConstEval<'s, '_>,
) -> Vec<Region<'s>> {
    let mut regions = Vec::new();
    let mut names: Vec<&str> = defs.keys().copied().collect();
    names.sort_unstable();
    for name in names {
        let Some(middle) = name
            .strip_prefix(prefix)
            .and_then(|r| r.strip_prefix('_'))
            .and_then(|r| r.strip_suffix("_OFFSET"))
        else {
            continue;
        };
        let bytes_name = format!("{prefix}_{middle}_BYTES");
        let Some((&sibling, _)) = defs.get_key_value(bytes_name.as_str()) else {
            continue;
        };
        let (Some(offset), Some(bytes)) = (eval.resolve(name), eval.resolve(sibling)) else {
            continue;
        };
        let line = defs.get(name).map_or(0, |d| d.line);
        regions.push(Region { name, line, offset, bytes });
    }
    regions
}

/// K009/K010: proves the declared WRAM/MRAM regions of one file are within
/// capacity and pairwise non-overlapping. (Alignment of the same constants
/// is covered by K004.)
pub fn check_budget(
    file: &Path,
    tokens: &[Token<'_>],
    globals: &HashMap<String, u64>,
    findings: &mut Vec<Finding>,
) {
    let defs = collect_consts(tokens);
    let mut eval = ConstEval::new(tokens, &defs, globals);
    for (prefix, rule, cap_name, default_cap, mem) in [
        ("WRAM", "K009", "WRAM_CAPACITY_BYTES", DEFAULT_WRAM_CAPACITY, "WRAM"),
        ("MRAM", "K010", "MRAM_BANK_CAPACITY_BYTES", DEFAULT_MRAM_CAPACITY, "MRAM bank"),
    ] {
        let capacity = globals
            .get(cap_name)
            .copied()
            .or_else(|| {
                let mut e = ConstEval::new(tokens, &defs, globals);
                defs.get_key_value(cap_name).and_then(|(&n, _)| e.resolve(n))
            })
            .unwrap_or(default_cap);
        let regions = regions_for(prefix, &defs, &mut eval);
        for r in &regions {
            let end = r.offset.checked_add(r.bytes);
            if end.is_none() || end.is_some_and(|e| e > capacity) {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: r.line,
                    rule,
                    message: format!(
                        "region `{}` [{}, {}) exceeds the {capacity}-byte {mem} capacity",
                        r.name,
                        r.offset,
                        r.offset.saturating_add(r.bytes),
                    ),
                });
            }
        }
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                let overlap = a.bytes > 0
                    && b.bytes > 0
                    && a.offset < b.offset.saturating_add(b.bytes)
                    && b.offset < a.offset.saturating_add(a.bytes);
                if overlap {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: b.line.max(a.line),
                        rule,
                        message: format!(
                            "regions `{}` [{}, {}) and `{}` [{}, {}) overlap",
                            a.name,
                            a.offset,
                            a.offset.saturating_add(a.bytes),
                            b.name,
                            b.offset,
                            b.offset.saturating_add(b.bytes),
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::tokenize;

    fn run_budget(src: &str) -> Vec<Finding> {
        let tokens = tokenize(src);
        let mut findings = Vec::new();
        check_budget(Path::new("crates/core/src/kernels.rs"), &tokens, &HashMap::new(), &mut findings);
        findings
    }

    #[test]
    fn overlapping_wram_regions_are_flagged() {
        let src = r#"
            pub const WRAM_Q_OFFSET: usize = 0;
            pub const WRAM_Q_BYTES: usize = 1024;
            pub const WRAM_BATCH_OFFSET: usize = 512;
            pub const WRAM_BATCH_BYTES: usize = 256;
        "#;
        let f = run_budget(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "K009");
        assert!(f[0].message.contains("overlap"), "{f:?}");
    }

    #[test]
    fn wram_region_beyond_capacity_is_flagged() {
        let src = r#"
            pub const WRAM_Q_OFFSET: usize = 0;
            pub const WRAM_Q_BYTES: usize = 65_544;
        "#;
        let f = run_budget(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "K009");
        assert!(f[0].message.contains("65536-byte WRAM"), "{f:?}");
    }

    #[test]
    fn capacity_constant_from_globals_wins_over_default() {
        let src = r#"
            pub const MRAM_T_OFFSET: usize = 0;
            pub const MRAM_T_BYTES: usize = 2048;
        "#;
        let tokens = tokenize(src);
        let mut globals = HashMap::new();
        globals.insert("MRAM_BANK_CAPACITY_BYTES".to_string(), 1024);
        let mut findings = Vec::new();
        check_budget(Path::new("x.rs"), &tokens, &globals, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "K010");
    }

    #[test]
    fn disjoint_regions_within_capacity_are_clean() {
        let src = r#"
            pub const WRAM_Q_OFFSET: usize = 0;
            pub const WRAM_Q_BYTES: usize = 12_000;
            pub const WRAM_BATCH_OFFSET: usize = WRAM_Q_BYTES;
            pub const WRAM_BATCH_BYTES: usize = 8192;
            pub const MRAM_HEADER_OFFSET: usize = 0;
            pub const MRAM_HEADER_BYTES: usize = 64;
            pub const MRAM_Q_OFFSET: usize = MRAM_HEADER_BYTES;
            pub const MRAM_Q_BYTES: usize = 12_000;
        "#;
        let f = run_budget(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unresolvable_regions_are_skipped() {
        let src = r#"
            pub const WRAM_DYN_OFFSET: usize = size_of::<Header>();
            pub const WRAM_DYN_BYTES: usize = 64;
        "#;
        assert!(run_budget(src).is_empty());
    }
}
