//! Workspace call-graph construction and kernel reachability.
//!
//! Builds a function index over a parsed [`Workspace`](crate::parse::Workspace),
//! resolves each call site into edges, and computes the set of functions
//! transitively reachable from *kernel entry points*:
//!
//! * every method of an `impl Kernel for ...` block, and
//! * every function taking a `DpuContext` parameter.
//!
//! Inherent methods of the platform types (`DpuContext`, `F32`) are the
//! charged simulator substrate itself — they are covered by K003, may
//! legitimately mention `f32`/`softfloat`/`fastpath`, and are therefore
//! excluded from traversal (the *boundary* of kernel code, not part of it).
//!
//! Resolution is deliberately conservative (an under-approximation):
//!
//! * typed receivers resolve to methods of that owner type;
//! * bare calls resolve to free functions — same file first, then a unique
//!   workspace-wide match;
//! * untyped method receivers resolve only when the method name is unique
//!   across the workspace *and* not a common `std` method name;
//! * anything else adds no edge.
//!
//! Every reachable function carries a witness chain (entry → ... → fn) that
//! the kernel rules append to their findings.

use std::collections::{BTreeMap, VecDeque};

use crate::parse::{Recv, Workspace};

/// Identifies a function as (file index, fn index) into the workspace.
pub type FnId = (usize, usize);

/// Owner types that form the charged platform boundary: reachability stops
/// at (and kernel rules skip) their inherent impls.
pub const PLATFORM_OWNERS: &[&str] = &["DpuContext", "F32"];

/// Method names too generic for the unique-name fallback: they collide
/// with `std` inherent methods, so an untyped `x.get(...)` must not edge
/// into some workspace type's `get`.
const COMMON_METHOD_NAMES: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "push", "pop", "insert",
    "remove", "iter", "iter_mut", "next", "min", "max", "abs", "into", "from", "as_ref", "as_mut",
    "as_str", "as_bytes", "to_le_bytes", "to_be_bytes", "map", "and_then", "unwrap_or", "take",
    "contains", "extend", "clear", "fmt", "eq", "cmp", "hash", "drop", "write", "read", "run",
    "reset", "step", "emit", "flush", "count", "sum", "last", "first", "split", "join", "start",
    "end", "name", "id", "kind", "value",
];

/// One reachable function with its call-chain witness from an entry point.
#[derive(Debug, Clone)]
pub struct Reached {
    /// Qualified names (`Owner::fn` / `fn`) from the entry point to this
    /// function, inclusive. Length 1 for entry points themselves.
    pub chain: Vec<String>,
}

impl Reached {
    /// Renders the witness chain as `a → b → c`.
    pub fn witness(&self) -> String {
        self.chain.join(" → ")
    }
}

/// The resolved call graph plus the kernel-reachable set.
pub struct CallGraph {
    /// Forward edges, caller → callees (deduplicated, in call order).
    pub edges: BTreeMap<FnId, Vec<FnId>>,
    /// Kernel entry points in (file, fn) order.
    pub entries: Vec<FnId>,
    /// Every function reachable from an entry, with a shortest witness
    /// chain (BTreeMap for deterministic iteration order).
    pub reachable: BTreeMap<FnId, Reached>,
}

/// True if `id` names an inherent method of a platform type.
fn is_platform(ws: &Workspace<'_>, id: FnId) -> bool {
    let f = &ws.files[id.0].fns[id.1];
    f.trait_name.is_none() && f.owner.is_some_and(|o| PLATFORM_OWNERS.contains(&o))
}

/// Builds the call graph and computes kernel reachability.
pub fn build(ws: &Workspace<'_>) -> CallGraph {
    // Name indexes over every function in the workspace.
    let mut methods: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new(); // (owner, name)
    let mut by_method_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            let id = (fi, ni);
            match f.owner {
                Some(owner) => {
                    methods.entry((owner, f.name)).or_default().push(id);
                    by_method_name.entry(f.name).or_default().push(id);
                }
                None => free_by_name.entry(f.name).or_default().push(id),
            }
        }
    }

    let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            let id = (fi, ni);
            let mut out: Vec<FnId> = Vec::new();
            for call in &f.calls {
                let targets: Vec<FnId> = match call.recv {
                    Recv::Typed(ty) => methods
                        .get(&(ty, call.name))
                        .cloned()
                        .unwrap_or_default(),
                    Recv::Free => {
                        let candidates = free_by_name.get(call.name);
                        match candidates {
                            Some(c) => {
                                let same_file: Vec<FnId> =
                                    c.iter().copied().filter(|t| t.0 == fi).collect();
                                if !same_file.is_empty() {
                                    same_file
                                } else if c.len() == 1 {
                                    c.clone()
                                } else {
                                    Vec::new()
                                }
                            }
                            None => Vec::new(),
                        }
                    }
                    Recv::Unknown => {
                        if COMMON_METHOD_NAMES.contains(&call.name) {
                            Vec::new()
                        } else {
                            match by_method_name.get(call.name) {
                                Some(c) if c.len() == 1 => c.clone(),
                                _ => Vec::new(),
                            }
                        }
                    }
                };
                for t in targets {
                    if t != id && !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
            if !out.is_empty() {
                edges.insert(id, out);
            }
        }
    }

    // Entry points: impl-Kernel methods and DpuContext-taking functions,
    // excluding the platform boundary itself.
    let mut entries: Vec<FnId> = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            let id = (fi, ni);
            if is_platform(ws, id) {
                continue;
            }
            if f.trait_name == Some("Kernel") || f.takes_ctx {
                entries.push(id);
            }
        }
    }

    // BFS with parent pointers for shortest witness chains.
    let mut reachable: BTreeMap<FnId, Reached> = BTreeMap::new();
    let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &e in &entries {
        if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(e) {
            slot.insert(None);
            queue.push_back(e);
        }
    }
    while let Some(id) = queue.pop_front() {
        if let Some(out) = edges.get(&id) {
            for &t in out {
                if is_platform(ws, t) || parent.contains_key(&t) {
                    continue;
                }
                parent.insert(t, Some(id));
                queue.push_back(t);
            }
        }
    }
    for &id in parent.keys() {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(ws.files[c.0].fns[c.1].qualified());
            cur = parent[&c];
        }
        chain.reverse();
        reachable.insert(id, Reached { chain });
    }

    CallGraph { edges, entries, reachable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{SourceFile, Workspace};
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Vec<SourceFile> {
        files
            .iter()
            .map(|(p, s)| SourceFile { rel: PathBuf::from(p), src: (*s).to_string() })
            .collect()
    }

    #[test]
    fn transitive_helpers_are_reachable_with_witness() {
        let sources = ws_of(&[(
            "crates/core/src/kernels.rs",
            r#"
            impl Kernel for K {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    helper(1);
                    Ok(())
                }
            }
            fn helper(v: u32) -> u32 { deeper(v) }
            fn deeper(v: u32) -> u32 { v }
            fn unrelated(v: u32) -> u32 { v }
            "#,
        )]);
        let ws = Workspace::build(&sources);
        let g = build(&ws);
        let names: Vec<String> = g
            .reachable
            .values()
            .map(|r| r.chain.last().unwrap().clone())
            .collect();
        assert!(names.contains(&"K::run".to_string()), "{names:?}");
        assert!(names.contains(&"helper".to_string()), "{names:?}");
        assert!(names.contains(&"deeper".to_string()), "{names:?}");
        assert!(!names.contains(&"unrelated".to_string()), "{names:?}");
        let deeper = g
            .reachable
            .values()
            .find(|r| r.chain.last().unwrap() == "deeper")
            .unwrap();
        assert_eq!(deeper.witness(), "K::run → helper → deeper");
    }

    #[test]
    fn platform_impls_bound_the_traversal() {
        let sources = ws_of(&[(
            "crates/pim/src/kernel.rs",
            r#"
            impl Kernel for K {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    ctx.fadd(a, b);
                    Ok(())
                }
            }
            impl<'a> DpuContext<'a> {
                pub fn fadd(&mut self, a: F32, b: F32) -> F32 { softfloat::f32_add(a.0, b.0) }
            }
            "#,
        )]);
        let ws = Workspace::build(&sources);
        let g = build(&ws);
        assert!(g
            .reachable
            .values()
            .all(|r| r.chain.last().unwrap() != "DpuContext::fadd"));
    }

    #[test]
    fn cross_file_unique_free_fns_resolve() {
        let sources = ws_of(&[
            (
                "crates/core/src/kernels.rs",
                r#"
                fn kernel_helper(ctx: &mut DpuContext<'_>) { seed_for(3); }
                "#,
            ),
            (
                "crates/core/src/layout.rs",
                r#"
                pub fn seed_for(x: u64) -> u64 { x }
                "#,
            ),
        ]);
        let ws = Workspace::build(&sources);
        let g = build(&ws);
        assert!(g
            .reachable
            .values()
            .any(|r| r.chain.last().unwrap() == "seed_for"));
    }

    #[test]
    fn ambiguous_and_common_names_add_no_edges() {
        let sources = ws_of(&[(
            "crates/core/src/a.rs",
            r#"
            impl Kernel for K {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    mystery().helper_method(1); // untyped receiver
                    opaque().get(2);            // common std name
                    Ok(())
                }
            }
            struct A;
            impl A { fn helper_method(&self) {} fn get(&self) {} }
            struct B;
            impl B { fn helper_method(&self) {} }
            "#,
        )]);
        let ws = Workspace::build(&sources);
        let g = build(&ws);
        // `helper_method` is ambiguous (A and B), `get` is a common name:
        // neither resolves, so only the entry itself is reachable.
        let names: Vec<String> = g
            .reachable
            .values()
            .map(|r| r.chain.last().unwrap().clone())
            .collect();
        assert_eq!(names, ["K::run"], "{names:?}");
    }

    #[test]
    fn unique_uncommon_method_resolves_via_fallback() {
        let sources = ws_of(&[(
            "crates/core/src/a.rs",
            r#"
            impl Kernel for K {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    mystery().apply_update_rule(1);
                    Ok(())
                }
            }
            struct A;
            impl A { fn apply_update_rule(&self) {} }
            "#,
        )]);
        let ws = Workspace::build(&sources);
        let g = build(&ws);
        assert!(g
            .reachable
            .values()
            .any(|r| r.chain.last().unwrap() == "A::apply_update_rule"));
    }
}
