//! The lint rule registry and rule implementations.
//!
//! Every rule has a stable ID (`K0xx` kernel-discipline, `D0xx` host-side
//! determinism, `W0xx` workspace hygiene), a severity, a one-paragraph
//! explanation and a worked example available via `--explain`, and a fix
//! hint available via `--fix-hints`. Rules operate on the token streams and
//! item index produced by [`crate::scanner`] / [`crate::parse`]; literal
//! contents are opaque, so violations quoted inside strings (e.g. in this
//! file's own tests) never trip the analyzer.
//!
//! Kernel rules (K001/K002/K005–K008/K011) are enforced over the set of
//! functions *transitively reachable* from kernel entry points
//! ([`crate::callgraph`]), not over syntactic regions: a helper three calls
//! away from `SwiftRlKernel::run` is held to the same discipline as the
//! kernel body itself, and each finding carries a call-chain witness.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::budget;
use crate::callgraph;
use crate::parse::{SourceFile, Workspace};
use crate::report::Severity;
use crate::scanner::{matching_brace, matching_delim, tokenize, Token, TokenKind};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule ID (`K001`..`K011`, `D001`..`D003`, `W001`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Static metadata for one rule, surfaced by `--explain` / `--fix-hints`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule ID.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Severity surfaced in `--json` / SARIF output.
    pub severity: Severity,
    /// Where the rule applies.
    pub scope: &'static str,
    /// Multi-line explanation of what the rule enforces and why.
    pub explain: &'static str,
    /// A short worked example of a violation (and what is clean).
    pub example: &'static str,
    /// Short suggestion for fixing a violation.
    pub fix_hint: &'static str,
}

/// All registered rules, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "K001",
        title: "no host floats in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Code reachable from a kernel entry point (any method of an \
`impl Kernel for ...` block, or any function taking a `DpuContext` \
parameter, plus everything they transitively call) must not use host \
`f32`/`f64` types or float literals. The DPU has no FPU: every float op \
must be an emulated, *charged* intrinsic (`DpuContext::fadd`, `fmul`, ...) \
operating on the `swiftrl_pim::kernel::F32` bit-pattern newtype. Host-float \
leaks silently skip the soft-float cycle charges that SwiftRL's \
FP32-vs-INT32 comparison (ISPASS'24 Fig. 7) is built on, making reported \
cycle counts too fast.",
        example: "violation (caught through the call graph, with a witness):\n\
    impl Kernel for K {\n\
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {\n\
            let x = helper(1); // K::run -> helper\n\
            Ok(())\n\
        }\n\
    }\n\
    fn helper(v: u32) -> u32 { (v as f32) as u32 } // <- K001\n\
clean: route through `ctx.i32_to_f32(...)` / `F32` bits.",
        fix_hint: "wrap the bits in `F32` and route arithmetic through \
`DpuContext::{fadd,fsub,fmul,fdiv,fgt,fmax,i32_to_f32,f32_to_i32}`",
    },
    RuleInfo {
        id: "K002",
        title: "no nondeterminism or free work in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Kernel-reachable code must be deterministic and fully \
charged. Heap allocation (`vec!`, `Vec`, `Box`, `String`, `to_vec`, \
`to_bytes`, ...), host I/O (`println!`, `dbg!`), wall-clock time \
(`std::time`, `Instant`), and `rand::` are all host-runtime services a real \
DPU tasklet does not have; using them either costs zero charged cycles \
(free work) or makes runs non-reproducible. Use fixed-size stack buffers, \
the charged `lcg_next` intrinsic for randomness, and `DpuContext` DMA for \
data movement. (`format!` on fault paths is exempt: faults abort cycle \
accounting anyway. Host threading has its own rule, K005.)",
        example: "violation:\n\
    fn kernel_helper(ctx: &mut DpuContext<'_>) {\n\
        let buf = vec![0u8; 64];          // <- K002 heap allocation\n\
        let t = std::time::Instant::now(); // <- K002 wall-clock\n\
    }\n\
clean: a fixed `[u8; 64]` buffer and the charged `ctx.lcg_next()`.",
        fix_hint: "replace heap buffers with fixed-size arrays, encode into \
caller-provided `&mut [u8]`, and delete host I/O from kernel bodies",
    },
    RuleInfo {
        id: "K003",
        title: "every DpuContext intrinsic charges a cost",
        severity: Severity::Error,
        scope: "crates/pim/src/kernel.rs + config.rs",
        explain: "Every public `&mut self` method on `DpuContext` is an \
intrinsic kernels can call, so it must charge at least one `OpClass` — \
directly (`charge_alu`, `charge_dma`, ...) or by delegating to a charged \
intrinsic. Additionally every field of `pim::config::OpCosts` must be \
referenced by some intrinsic, so a calibrated cost can never silently go \
unused. Adding an intrinsic without a charge (or a cost without a consumer) \
is exactly the bug class that would quietly corrupt the paper's cycle model.",
        example: "violation:\n\
    impl<'a> DpuContext<'a> {\n\
        pub fn sneaky(&mut self, a: u32) -> u32 { a ^ 1 } // <- K003, no charge\n\
    }\n\
clean: `pub fn double(&mut self, a: u32) -> u32 { self.add32(a, a) }` \
(delegates to a charged intrinsic).",
        fix_hint: "add the appropriate `self.charge_*(...)` call to the new \
intrinsic, or wire the new `OpCosts` field into the intrinsic that consumes it",
    },
    RuleInfo {
        id: "K004",
        title: "MRAM layout constants are 8-byte aligned",
        severity: Severity::Error,
        scope: "constants named *_OFFSET / *_BYTES, workspace-wide",
        explain: "The UPMEM DMA engine moves MRAM<->WRAM data in 8-byte \
granules, and the simulator (like the hardware) rejects misaligned \
transfers. Any constant named `*_OFFSET` or `*_BYTES` that describes MRAM \
layout must therefore be a multiple of 8. The rule evaluates simple constant \
expressions (literals, references to other constants, `+`, `-`, `*`, `<<`) \
and flags any resolvable value not divisible by 8.",
        example: "violation:\n\
    pub const HEADER_BYTES: usize = 64;\n\
    pub const BAD_OFFSET: usize = HEADER_BYTES + 4; // <- K004, 68 % 8 != 0\n\
clean: `pub const Q_TABLE_OFFSET: usize = HEADER_BYTES;`",
        fix_hint: "round the offset/record size up to the next multiple of 8 \
and pad the on-MRAM layout accordingly",
    },
    RuleInfo {
        id: "K005",
        title: "no host threading in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Kernel-reachable code must not use host threading \
primitives — `std::thread`, `spawn`, `crossbeam`, `rayon`. Host-level \
parallelism belongs to the execution engine \
(`pim::engine::ExecutionEngine`), which already fans DPU execution out over \
worker threads and guarantees bit-identical results via its ordered merge. \
A kernel that spawns its own OS threads does work the cycle model never \
charges, races the engine's disjoint-chunk ownership of DPU state, and \
destroys the Serial/Threaded determinism contract. Intra-DPU parallelism \
must instead go through the charged tasklet model.",
        example: "violation:\n\
    impl Kernel for K {\n\
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {\n\
            std::thread::spawn(|| {}); // <- K005\n\
            Ok(())\n\
        }\n\
    }\n\
clean: `PimConfig::builder().engine(ExecutionEngine::Threaded { workers })`.",
        fix_hint: "delete the threading; parallelism across DPUs comes from \
`PimConfig::engine`, parallelism within a DPU from tasklets",
    },
    RuleInfo {
        id: "K006",
        title: "no fault-plan access in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Kernel-reachable code must not read or mention the \
fault-injection plan (`FaultPlan`, the `faults` field of `PimConfig`). \
Fault injection is a *platform* behaviour: the simulated DPU aborts, \
straggles, or corrupts memory from the outside, exactly as real hardware \
fails underneath an oblivious kernel. A kernel that branches on the fault \
plan simulates a program that knows when it will crash — its cycle \
accounting and its Serial/Threaded determinism contract both stop meaning \
anything, and the resilience layer's retry-replay argument (a faulted \
launch left MRAM untouched) silently breaks.",
        example: "violation:\n\
    fn kernel_helper(ctx: &mut DpuContext<'_>, cfg: &PimConfig) -> bool {\n\
        cfg.faults.kernel_fault(0, 0) // <- K006, kernel peeking at its fate\n\
    }\n\
clean: kernels never see `PimConfig`; faults arrive from the platform.",
        fix_hint: "delete the fault-plan access; inject faults only through \
`PimConfig::faults`, and keep kernels oblivious to them",
    },
    RuleInfo {
        id: "K007",
        title: "no direct arithmetic-library calls in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Kernel-reachable code must not call the arithmetic \
libraries (`softfloat`, `emul`, `fastpath`) directly: those modules compute \
values without charging DPU cycles, so a direct call does work the cycle \
model never sees. Worse, it bypasses the two-tier dispatch — the \
`DpuContext` intrinsics are the only place where the configured `ArithTier` \
selects between the instrumented reference implementation and the fast \
host-native one, and both tiers are proven bit- and cycle-identical only \
through that dispatch. A kernel calling `softfloat::f32_add` directly pins \
one tier, charges nothing, and silently breaks the parity contract.",
        example: "violation:\n\
    fn kernel_helper(ctx: &mut DpuContext<'_>, a: u32, b: u32) -> u32 {\n\
        softfloat::f32_add(a, b, &mut OpTally::new()) // <- K007\n\
    }\n\
clean: `ctx.fadd(F32(a), F32(b))` — charged and tier-dispatched.",
        fix_hint: "go through the charged `DpuContext` intrinsics (`fadd`, \
`fmul`, `mul32`, `lcg_next`, ...); they charge cycles and dispatch to the \
configured arithmetic tier",
    },
    RuleInfo {
        id: "K008",
        title: "no telemetry emission in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Kernel-reachable code must not touch the telemetry layer \
(the `telemetry` module, the `Telemetry` sink, or its `emit` method). \
Telemetry is a *host-side* observer: events are recorded after \
`DpuSet::launch_on` has merged per-DPU results in DPU-index order, which is \
what makes the event stream byte-identical between the Serial and Threaded \
engines. A kernel that emits events would observe execution from inside a \
worker thread — ordering would depend on the engine's scheduling, breaking \
the determinism contract — and the sink's mutex and event allocation would \
do host work the cycle model never charges.",
        example: "violation:\n\
    impl Kernel for K {\n\
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {\n\
            self.sink.emit(|| Event::SyncRound { .. }); // <- K008\n\
            Ok(())\n\
        }\n\
    }\n\
clean: the host `DpuSet` emits launch/transfer/sync events after the merge.",
        fix_hint: "delete the telemetry call; instrument at the host layer \
instead — `DpuSet` and the runner already emit transfer, launch, and sync \
events for every kernel execution",
    },
    RuleInfo {
        id: "K009",
        title: "declared WRAM regions fit and do not overlap",
        severity: Severity::Error,
        scope: "WRAM_<X>_OFFSET / WRAM_<X>_BYTES constant pairs, per file",
        explain: "A file that declares its WRAM layout as constant pairs \
`WRAM_<X>_OFFSET` / `WRAM_<X>_BYTES` gets a static proof that the regions \
are pairwise non-overlapping and fit the per-DPU WRAM capacity \
(`pim::config::WRAM_CAPACITY_BYTES`, 64 KB on UPMEM). The constants are \
evaluated with the same evaluator as K004 (which separately enforces their \
8-byte alignment); unresolvable expressions are skipped, never guessed. \
This turns the kernel's WRAM budget — Q-table slab plus per-tasklet batch \
windows — from a comment into a checked invariant.",
        example: "violation:\n\
    pub const WRAM_Q_OFFSET: usize = 0;\n\
    pub const WRAM_Q_BYTES: usize = 1024;\n\
    pub const WRAM_BATCH_OFFSET: usize = 512; // <- K009, overlaps Q\n\
    pub const WRAM_BATCH_BYTES: usize = 256;\n\
clean: `WRAM_BATCH_OFFSET = WRAM_Q_BYTES` (regions tile the 64 KB).",
        fix_hint: "re-tile the WRAM map so regions are disjoint and the last \
region ends at or below WRAM_CAPACITY_BYTES",
    },
    RuleInfo {
        id: "K010",
        title: "declared MRAM regions fit and do not overlap",
        severity: Severity::Error,
        scope: "MRAM_<X>_OFFSET / MRAM_<X>_BYTES constant pairs, per file",
        explain: "The MRAM counterpart of K009: constant pairs \
`MRAM_<X>_OFFSET` / `MRAM_<X>_BYTES` (header, Q-table slab, transition \
store) are proven pairwise non-overlapping and within the per-bank MRAM \
capacity (`pim::config::MRAM_BANK_CAPACITY_BYTES`, 64 MB on UPMEM). The \
kernel header's replay protocol relies on the header region never being \
clobbered by the Q-table or transition writes; this rule pins that layout \
statically instead of trusting the runtime bounds checks alone.",
        example: "violation:\n\
    pub const MRAM_HEADER_OFFSET: usize = 0;\n\
    pub const MRAM_HEADER_BYTES: usize = 64;\n\
    pub const MRAM_Q_TABLE_OFFSET: usize = 32; // <- K010, inside the header\n\
    pub const MRAM_Q_TABLE_BYTES: usize = 12_000;\n\
clean: `MRAM_Q_TABLE_OFFSET = MRAM_HEADER_BYTES`.",
        fix_hint: "re-tile the MRAM bank layout so regions are disjoint and \
end at or below MRAM_BANK_CAPACITY_BYTES",
    },
    RuleInfo {
        id: "K011",
        title: "no batched-tier access in kernel-reachable code",
        severity: Severity::Error,
        scope: "functions reachable from kernel entry points",
        explain: "Kernel-reachable code must not reach into the batched \
execution tier (`pim::batch`, `BatchContext`, `run_batched`). The batched \
tier is a *host-side* fusion of the per-transition update loop: the host \
proves preflight eligibility, runs the fused sweep, and charges a \
closed-form aggregate cycle tally. A per-transition kernel that calls into \
the batch layer would nest host-aggregate charging inside per-intrinsic \
charging — double-counting cycles — and would let the interpreted path \
observe host buffers the real DPU never sees. The only legal seam is \
`Kernel::batch()` *advertising* a `BatchKernel` implementation for the \
platform to invoke; the fused sweep itself runs from `Dpu::execute`, never \
from kernel code.",
        example: "violation:\n\
    impl Kernel for Fused {\n\
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {\n\
            let plan = batch::plan(ctx);     // <- K011\n\
            self.run_batched(&mut bctx);     // <- K011\n\
            Ok(())\n\
        }\n\
    }\n\
clean: `fn batch(&self) -> Option<&dyn BatchKernel> { Some(self) }` — \
advertising eligibility only; the platform invokes the fused sweep.",
        fix_hint: "keep the fused sweep host-side: implement `BatchKernel` \
in a separate impl block and advertise it via `Kernel::batch`; the \
per-transition `run` path must stay pure charged-intrinsic code",
    },
    RuleInfo {
        id: "D001",
        title: "no HashMap/HashSet in determinism-scoped library code",
        severity: Severity::Warning,
        scope: "library code of crates pim, core, telemetry, rl, env",
        explain: "The engine, telemetry, and resilience layers promise \
byte-identical observables (Q-tables, cycle stats, event streams) across \
engines and runs. `std::collections::HashMap`/`HashSet` iterate in \
randomized order (SipHash seeding), so any hash-map iteration that feeds \
results, merged statistics, or emitted events is a latent \
nondeterminism bug — precisely the class the Serial/Threaded byte-identity \
tests exist to catch. Determinism-scoped library code therefore avoids the \
hashed collections entirely; `BTreeMap`/`BTreeSet` or index-keyed `Vec`s \
give the same asymptotics with a defined order.",
        example: "violation (in crates/core/src/...):\n\
    let mut by_dpu: HashMap<usize, Stats> = HashMap::new(); // <- D001\n\
    for (dpu, s) in &by_dpu { merged.absorb(s); } // order varies per run\n\
clean: `BTreeMap<usize, Stats>` — same code, defined iteration order.",
        fix_hint: "use BTreeMap/BTreeSet or a Vec indexed by DPU/tasklet id; \
hashed collections are fine in tests and non-determinism-scoped crates",
    },
    RuleInfo {
        id: "D002",
        title: "no ambient time/entropy in determinism-scoped library code",
        severity: Severity::Warning,
        scope: "library code of crates pim, core, telemetry, rl, env",
        explain: "Simulated observables must derive only from seeded state: \
the splitmix64-derived per-DPU/episode seeds and the charged LCG \
intrinsics. `Instant`/`SystemTime` reads and ambient RNG constructors \
(`thread_rng`, `from_entropy`) pull wall-clock or OS entropy into library \
code, where one careless use can leak into a simulated observable and break \
run-to-run byte identity. Wall-clock timing is legitimate exactly where it \
is the *measurement* (host-side runtime breakdowns, CPU baselines, bench \
binaries) — those sites live in the checked-in baseline file or outside \
the determinism scope, so any *new* ambient-time read fails CI.",
        example: "violation (in crates/rl/src/...):\n\
    let seed = std::time::SystemTime::now() // <- D002, run-dependent seed\n\
        .duration_since(UNIX_EPOCH).unwrap().as_nanos() as u64;\n\
clean: `let seed = splitmix64(cfg.seed ^ dpu_index as u64);`",
        fix_hint: "derive randomness from the seeded splitmix64/LCG paths; \
keep wall-clock reads in bench/CLI code or the documented baseline entries",
    },
    RuleInfo {
        id: "D003",
        title: "no std::env reads outside bench/CLI binaries",
        severity: Severity::Warning,
        scope: "library code of all crates except bench; binaries exempt",
        explain: "Environment variables are invisible inputs: a library that \
reads `std::env` behaves differently across shells and CI runners with no \
trace in configs or seeds, undermining both reproducibility and the \
byte-identity harness. Configuration must flow through typed structs \
(`RunConfig`, `PimConfig`, CLI flags). Reading the environment is the job \
of binaries — the bench CLI and `src/main.rs`/`src/bin/` roots — which \
parse it into explicit config once, at the edge.",
        example: "violation (in crates/pim/src/...):\n\
    let dpus = std::env::var(\"SWIFTRL_DPUS\") // <- D003, invisible input\n\
        .map_or(64, |v| v.parse().unwrap_or(64));\n\
clean: `PimConfig::builder().dpus(n)` with `n` parsed by the bench CLI.",
        fix_hint: "lift the env read into the binary entry point and pass \
the value down as explicit configuration",
    },
    RuleInfo {
        id: "W001",
        title: "no unwrap/expect in library code",
        severity: Severity::Warning,
        scope: "crates/*/src/**, excluding binaries, #[cfg(test)], tests/, benches/",
        explain: "Library crates (`crates/*/src/**`, excluding binary roots \
and `#[cfg(test)]` code) must not call `.unwrap()` or `.expect(...)`: a \
panic inside the simulator or an RL loop tears down the whole host process \
instead of surfacing a typed error. Test code — `#[cfg(test)]` modules, the \
top-level `tests/` suites, benches — may unwrap freely; this analyzer rule \
is the single enforcement point (there is deliberately no parallel clippy \
lint to suppress). Return `Result`, use `unwrap_or`/`map_or` with a \
documented default, or `std::panic::resume_unwind` when re-raising a worker \
panic is genuinely intended.",
        example: "violation (in crates/rl/src/...):\n\
    pub fn q_at(&self, s: State) -> f32 { *self.q.get(s.0).unwrap() } // <- W001\n\
clean: `pub fn q_at(&self, s: State) -> Option<f32> { self.q.get(s.0).copied() }`",
        fix_hint: "propagate a typed error with `?`, or handle the `None`/`Err` \
arm explicitly",
    },
];

/// Looks up rule metadata by ID (case-insensitive).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(id.trim()))
}

// ---------------------------------------------------------------------------
// Kernel-reachable token discipline (K001, K002, K005–K008, K011)
// ---------------------------------------------------------------------------

const K002_ALLOC: &[&str] = &[
    "vec", "Vec", "Box", "String", "to_vec", "to_string", "to_owned", "to_bytes", "HashMap",
    "BTreeMap", "VecDeque",
];
const K002_IO: &[&str] = &["println", "print", "eprintln", "eprint", "dbg", "write", "writeln"];
const K002_NONDET: &[&str] = &["rand", "Instant", "SystemTime", "sleep"];
const K005_THREADING: &[&str] = &["thread", "spawn", "crossbeam", "rayon"];
const K006_FAULTS: &[&str] = &["FaultPlan", "faults"];
const K007_ARITH: &[&str] = &["softfloat", "emul", "fastpath"];
const K008_TELEMETRY: &[&str] = &["telemetry", "Telemetry", "emit"];
// `BatchKernel` is deliberately absent: `Kernel::batch` must *name* the
// trait in its `Option<&dyn BatchKernel>` signature to advertise the fused
// path, and that advertisement is the one legal seam. The bare ident
// `batch` is gated on a following `::` so the advertising method's own
// name never trips the rule.
const K011_BATCH: &[&str] = &["BatchContext", "run_batched"];

/// Scans one kernel-reachable function (signature + body tokens) and emits
/// K001/K002/K005–K008/K011 findings, each suffixed with the call-chain
/// witness when the function is not itself an entry point.
fn scan_kernel_fn(
    file: &Path,
    tokens: &[Token<'_>],
    range: (usize, usize),
    witness: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let (start, end) = range;
    let suffix = witness.map_or(String::new(), |w| format!(" [kernel-reachable via {w}]"));
    let mut push = |line: u32, rule: &'static str, message: String| {
        findings.push(Finding {
            file: file.to_path_buf(),
            line,
            rule,
            message: format!("{message}{suffix}"),
        });
    };
    for k in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = &tokens[k];
        match t.kind {
            TokenKind::FloatLit => push(
                t.line,
                "K001",
                format!(
                    "host float literal `{}` in kernel code; use `F32` bits and \
                     charged `DpuContext` intrinsics",
                    t.text
                ),
            ),
            TokenKind::Ident if t.text == "f32" || t.text == "f64" => push(
                t.line,
                "K001",
                format!(
                    "host `{}` type in kernel code; the DPU has no FPU — use \
                     `F32` and the soft-float intrinsics",
                    t.text
                ),
            ),
            TokenKind::Ident if K005_THREADING.contains(&t.text) => push(
                t.line,
                "K005",
                format!(
                    "`{}` in kernel body (host threading); parallelism \
                     belongs to the execution engine and the tasklet model",
                    t.text
                ),
            ),
            TokenKind::Ident if K006_FAULTS.contains(&t.text) => push(
                t.line,
                "K006",
                format!(
                    "`{}` in kernel body (fault-plan access); faults are \
                     a platform behaviour and kernels must stay oblivious \
                     to them",
                    t.text
                ),
            ),
            TokenKind::Ident if K007_ARITH.contains(&t.text) => push(
                t.line,
                "K007",
                format!(
                    "`{}` in kernel body (uncharged arithmetic-library \
                     call); go through the charged `DpuContext` \
                     intrinsics, which also dispatch the configured \
                     arithmetic tier",
                    t.text
                ),
            ),
            TokenKind::Ident if K008_TELEMETRY.contains(&t.text) => push(
                t.line,
                "K008",
                format!(
                    "`{}` in kernel body (telemetry emission); the \
                     event stream is a host-side observer recorded \
                     after the engine's ordered merge — kernels must \
                     not emit into it",
                    t.text
                ),
            ),
            TokenKind::Ident if K011_BATCH.contains(&t.text) => push(
                t.line,
                "K011",
                format!(
                    "`{}` in kernel body (batched-tier access); the fused \
                     sweep is host-side — kernels may only advertise a \
                     `BatchKernel` impl via `Kernel::batch`",
                    t.text
                ),
            ),
            TokenKind::Ident
                if t.text == "batch"
                    && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(k + 2).is_some_and(|n| n.is_punct(':')) =>
            {
                push(
                    t.line,
                    "K011",
                    "`batch::` path in kernel body (batched-tier access); \
                     the fused sweep is host-side — kernels may only \
                     advertise a `BatchKernel` impl via `Kernel::batch`"
                        .to_string(),
                )
            }
            TokenKind::Ident => {
                let reason = if K002_ALLOC.contains(&t.text) {
                    Some("heap allocation")
                } else if K002_IO.contains(&t.text) {
                    // `write`/`writeln` only matter as macros; a plain
                    // method call `x.write(...)` is fine, so gate the io
                    // set on a following `!`.
                    if tokens.get(k + 1).is_some_and(|n| n.is_punct('!')) {
                        Some("host I/O")
                    } else {
                        None
                    }
                } else if K002_NONDET.contains(&t.text) {
                    Some("nondeterministic host service")
                } else if t.text == "time"
                    && k >= 3
                    && tokens[k - 1].is_punct(':')
                    && tokens[k - 2].is_punct(':')
                    && tokens[k - 3].is_ident("std")
                {
                    Some("wall-clock time")
                } else {
                    None
                };
                if let Some(reason) = reason {
                    push(
                        t.line,
                        "K002",
                        format!(
                            "`{}` in kernel body ({reason}); kernels must be \
                             deterministic and fully cycle-charged",
                            t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// D-series: host-side determinism
// ---------------------------------------------------------------------------

/// Crates whose library code carries the byte-identity contract.
const DETERMINISM_CRATES: &[&str] = &["pim", "core", "telemetry", "rl", "env"];

/// Crates whose whole purpose is CLI/bench measurement (exempt from D003).
const CLI_CRATES: &[&str] = &["bench"];

const D001_HASHED: &[&str] = &["HashMap", "HashSet"];
const D002_AMBIENT: &[&str] = &["Instant", "SystemTime", "thread_rng", "from_entropy"];

/// The crate name of a `crates/<name>/...` path.
fn crate_of(file: &Path) -> Option<String> {
    let mut it = file.iter();
    if it.next().and_then(|c| c.to_str()) != Some("crates") {
        return None;
    }
    it.next().and_then(|c| c.to_str()).map(str::to_string)
}

/// True for library sources: `crates/*/src/**` excluding binary roots
/// (`src/main.rs`, `src/bin/**`). Test suites (`tests/`, `benches/`) and
/// examples never satisfy this.
fn is_library_source(file: &Path) -> bool {
    let p: Vec<&str> = file
        .iter()
        .map(|c| c.to_str().unwrap_or_default())
        .collect();
    if p.first() != Some(&"crates") {
        return false;
    }
    let Some(src_at) = p.iter().position(|c| *c == "src") else {
        return false;
    };
    if p.get(src_at + 1) == Some(&"bin") {
        return false;
    }
    p.last() != Some(&"main.rs")
}

fn check_determinism(
    file: &Path,
    tokens: &[Token<'_>],
    test_mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !is_library_source(file) {
        return;
    }
    let krate = crate_of(file).unwrap_or_default();
    let in_det_scope = DETERMINISM_CRATES.contains(&krate.as_str());
    let d003_applies = !CLI_CRATES.contains(&krate.as_str());
    for (i, t) in tokens.iter().enumerate() {
        if test_mask.get(i).copied().unwrap_or(false) || t.kind != TokenKind::Ident {
            continue;
        }
        if in_det_scope && D001_HASHED.contains(&t.text) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: t.line,
                rule: "D001",
                message: format!(
                    "`{}` in determinism-scoped library code; hashed iteration \
                     order is randomized per process — use BTreeMap/BTreeSet \
                     or an index-keyed Vec",
                    t.text
                ),
            });
        }
        if in_det_scope && D002_AMBIENT.contains(&t.text) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: t.line,
                rule: "D002",
                message: format!(
                    "`{}` in determinism-scoped library code; ambient \
                     time/entropy must not feed simulated observables — \
                     derive from the seeded splitmix64/LCG paths",
                    t.text
                ),
            });
        }
        if d003_applies
            && t.is_ident("env")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("std")
        {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: t.line,
                rule: "D003",
                message: "`std::env` read in library code; environment \
                          variables are invisible inputs — parse them in the \
                          binary entry point and pass typed config down"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// W001: unwrap/expect in library code
// ---------------------------------------------------------------------------

fn check_unwraps(
    file: &Path,
    tokens: &[Token<'_>],
    test_mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    if !is_library_source(file) {
        return;
    }
    for i in 1..tokens.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &tokens[i];
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: t.line,
                rule: "W001",
                message: format!(
                    "`.{}()` in library code; propagate a typed error instead",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// K003: charge coverage of DpuContext intrinsics and OpCosts fields
// ---------------------------------------------------------------------------

struct Method<'s> {
    name: &'s str,
    line: u32,
    is_pub: bool,
    takes_mut_self: bool,
    body: (usize, usize),
}

/// Extracts methods from every inherent `impl ... DpuContext ...` block
/// (trait impls — headers containing `for` — are exempt).
fn dpu_context_methods<'s>(tokens: &'s [Token<'s>]) -> Vec<Method<'s>> {
    let mut methods = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let (mut saw_ctx, mut saw_for) = (false, false);
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            saw_ctx |= tokens[j].is_ident("DpuContext");
            saw_for |= tokens[j].is_ident("for");
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('{') || !saw_ctx || saw_for {
            i = j + 1;
            continue;
        }
        let block_end = matching_brace(tokens, j);
        let mut k = j + 1;
        let mut last_item_boundary = j; // `{`, `}`, or `;` before the item
        while k < block_end {
            if tokens[k].is_punct('{') {
                // A nested block that is not a method body we recognized —
                // skip it wholesale (e.g. const items with blocks).
                k = matching_brace(tokens, k) + 1;
                last_item_boundary = k.saturating_sub(1);
                continue;
            }
            if tokens[k].is_punct(';') {
                last_item_boundary = k;
                k += 1;
                continue;
            }
            if tokens[k].is_ident("fn") {
                let is_pub = tokens[last_item_boundary..k]
                    .iter()
                    .any(|t| t.is_ident("pub"));
                let name_idx = k + 1;
                let name = match tokens.get(name_idx) {
                    Some(t) if t.kind == TokenKind::Ident => t.text,
                    _ => {
                        k += 1;
                        continue;
                    }
                };
                let line = tokens[name_idx].line;
                let mut p = name_idx + 1;
                while p < block_end && !tokens[p].is_punct('(') {
                    p += 1;
                }
                let params_end = matching_delim(tokens, p, '(', ')');
                let takes_mut_self = {
                    let ps = &tokens[p + 1..params_end.min(tokens.len())];
                    ps.first().is_some_and(|t| t.is_punct('&'))
                        && ps.iter().take(4).any(|t| t.is_ident("mut"))
                        && ps.iter().take(4).any(|t| t.is_ident("self"))
                };
                let mut b = params_end + 1;
                while b < block_end && !tokens[b].is_punct('{') && !tokens[b].is_punct(';') {
                    b += 1;
                }
                if b < block_end && tokens[b].is_punct('{') {
                    let body_end = matching_brace(tokens, b);
                    methods.push(Method {
                        name,
                        line,
                        is_pub,
                        takes_mut_self,
                        body: (b, body_end),
                    });
                    k = body_end + 1;
                    last_item_boundary = body_end;
                    continue;
                }
                k = b + 1;
                last_item_boundary = b;
                continue;
            }
            k += 1;
        }
        i = block_end + 1;
    }
    methods
}

/// Token-stream core of the K003 check (see [`check_charge_coverage`]).
fn charge_coverage_tokens(
    kernel_file: &Path,
    tokens: &[Token<'_>],
    config_file: &Path,
    cfg_tokens: &[Token<'_>],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let methods = dpu_context_methods(tokens);

    // Direct charges: any identifier starting with `charge` in the body.
    let mut charged: BTreeSet<&str> = methods
        .iter()
        .filter(|m| {
            tokens[m.body.0..=m.body.1.min(tokens.len() - 1)]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text.starts_with("charge"))
        })
        .map(|m| m.name)
        .collect();

    // Transitive: a method that calls `self.<charged>(...)` is charged too.
    loop {
        let mut grew = false;
        for m in &methods {
            if charged.contains(m.name) {
                continue;
            }
            let body = &tokens[m.body.0..=m.body.1.min(tokens.len() - 1)];
            let delegates = body.windows(4).any(|w| {
                w[0].is_ident("self")
                    && w[1].is_punct('.')
                    && w[2].kind == TokenKind::Ident
                    && charged.contains(w[2].text)
                    && w[3].is_punct('(')
            });
            if delegates {
                charged.insert(m.name);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for m in &methods {
        if m.is_pub && m.takes_mut_self && !charged.contains(m.name) {
            findings.push(Finding {
                file: kernel_file.to_path_buf(),
                line: m.line,
                rule: "K003",
                message: format!(
                    "intrinsic `DpuContext::{}` never charges an OpClass; every \
                     public `&mut self` intrinsic must cost cycles",
                    m.name
                ),
            });
        }
    }

    // OpCosts fields must all be consumed by kernel.rs.
    let mut fields: Vec<(&str, u32)> = Vec::new();
    let mut i = 0usize;
    while i + 1 < cfg_tokens.len() {
        if cfg_tokens[i].is_ident("struct") && cfg_tokens[i + 1].is_ident("OpCosts") {
            let mut j = i + 2;
            while j < cfg_tokens.len() && !cfg_tokens[j].is_punct('{') {
                j += 1;
            }
            let end = matching_brace(cfg_tokens, j);
            let mut k = j + 1;
            while k + 1 < end {
                if cfg_tokens[k].kind == TokenKind::Ident
                    && cfg_tokens[k + 1].is_punct(':')
                    && !cfg_tokens[k].is_ident("pub")
                {
                    fields.push((cfg_tokens[k].text, cfg_tokens[k].line));
                    // Skip the field's type up to the comma at depth 0.
                    let mut depth = 0i32;
                    while k < end {
                        if cfg_tokens[k].is_punct('<') || cfg_tokens[k].is_punct('(') {
                            depth += 1;
                        } else if cfg_tokens[k].is_punct('>') || cfg_tokens[k].is_punct(')') {
                            depth -= 1;
                        } else if cfg_tokens[k].is_punct(',') && depth <= 0 {
                            break;
                        }
                        k += 1;
                    }
                }
                k += 1;
            }
            break;
        }
        i += 1;
    }
    for (field, line) in fields {
        let used = tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == field);
        if !used {
            findings.push(Finding {
                file: config_file.to_path_buf(),
                line,
                rule: "K003",
                message: format!(
                    "`OpCosts::{field}` is never referenced by any DpuContext \
                     intrinsic; a calibrated cost must have a consumer"
                ),
            });
        }
    }
    findings
}

/// Checks that every public `&mut self` intrinsic on `DpuContext` charges an
/// `OpClass`, and that every `OpCosts` field is consumed by some intrinsic.
pub fn check_charge_coverage(
    kernel_file: &Path,
    kernel_src: &str,
    config_file: &Path,
    config_src: &str,
) -> Vec<Finding> {
    let tokens = tokenize(kernel_src);
    let cfg_tokens = tokenize(config_src);
    charge_coverage_tokens(kernel_file, &tokens, config_file, &cfg_tokens)
}

// ---------------------------------------------------------------------------
// Workspace entry point
// ---------------------------------------------------------------------------

/// Runs every rule over a parsed workspace: kernel rules on the
/// call-graph-reachable set, budget rules with workspace-global constants,
/// determinism and hygiene rules per file, and K003 when the pim kernel /
/// config pair is present. Findings are sorted by (file, line, rule).
pub fn check_workspace(ws: &Workspace<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Kernel discipline over the reachable set.
    let graph = callgraph::build(ws);
    for (&(fi, ni), reached) in &graph.reachable {
        let file = &ws.files[fi];
        let f = &file.fns[ni];
        let end = f.body.map_or(f.sig.1, |(_, e)| e);
        let witness = (reached.chain.len() > 1).then(|| reached.witness());
        scan_kernel_fn(
            file.rel,
            &file.tokens,
            (f.sig.0, end),
            witness.as_deref(),
            &mut findings,
        );
    }

    // Workspace-global constant values (for cross-file capacity lookups).
    // A name defined with conflicting values in different files is dropped.
    let mut globals: HashMap<String, u64> = HashMap::new();
    let mut conflicted: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        for (name, value) in budget::resolvable_consts(&file.tokens) {
            match globals.get(&name) {
                Some(&v) if v != value => {
                    conflicted.insert(name);
                }
                _ => {
                    globals.insert(name, value);
                }
            }
        }
    }
    for name in &conflicted {
        globals.remove(name);
    }

    for file in &ws.files {
        budget::check_alignment(file.rel, &file.tokens, &globals, &mut findings);
        budget::check_budget(file.rel, &file.tokens, &globals, &mut findings);
        check_determinism(file.rel, &file.tokens, &file.test_mask, &mut findings);
        check_unwraps(file.rel, &file.tokens, &file.test_mask, &mut findings);
    }

    // K003 on the pim kernel/config pair when both are in the workspace.
    let find = |suffix: &str| {
        ws.files
            .iter()
            .find(|f| f.rel.ends_with(suffix))
    };
    if let (Some(kernel), Some(config)) =
        (find("crates/pim/src/kernel.rs"), find("crates/pim/src/config.rs"))
    {
        findings.extend(charge_coverage_tokens(
            kernel.rel,
            &kernel.tokens,
            config.rel,
            &config.tokens,
        ));
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Runs the workspace rules over a single file: kernel reachability is
/// computed within the file, and capacity constants fall back to the UPMEM
/// defaults. (K003 needs the kernel/config pair and does not run here.)
pub fn check_file(file: &Path, src: &str) -> Vec<Finding> {
    let sources = [SourceFile { rel: file.to_path_buf(), src: src.to_string() }];
    let ws = Workspace::build(&sources);
    check_workspace(&ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = check_file(Path::new(file), src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        r.dedup();
        r
    }

    #[test]
    fn k001_flags_host_float_kernel() {
        let src = r#"
            impl Kernel for Bad {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let x = 0.5f32;
                    let y = 2.0 * x as f64;
                    Ok(())
                }
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k001: Vec<_> = findings.iter().filter(|f| f.rule == "K001").collect();
        assert_eq!(k001.len(), 3, "{findings:?}"); // 0.5f32, 2.0, f64
        assert_eq!(k001[0].line, 4);
    }

    #[test]
    fn k001_flags_fn_taking_context_outside_impl() {
        let src = r#"
            fn helper(ctx: &mut DpuContext<'_>, v: u32) -> u32 {
                (v as f32) as u32
            }
        "#;
        assert_eq!(rules_hit("crates/core/src/kernels.rs", src), ["K001"]);
    }

    #[test]
    fn k001_flags_transitive_helper_with_witness() {
        // The old region heuristic missed this: `helper` takes no
        // DpuContext and sits outside the impl block, but the kernel
        // reaches it through a plain call.
        let src = r#"
            impl Kernel for Sneaky {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let v = helper(1);
                    Ok(())
                }
            }
            fn helper(v: u32) -> u32 {
                (v as f32) as u32
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k001: Vec<_> = findings.iter().filter(|f| f.rule == "K001").collect();
        assert_eq!(k001.len(), 1, "{findings:?}");
        assert!(
            k001[0].message.contains("kernel-reachable via Sneaky::run → helper"),
            "{k001:?}"
        );
    }

    #[test]
    fn k001_ignores_host_code_and_strings() {
        let src = r##"
            fn host_side(x: f32) -> f32 { x * 0.5 }
            const MSG: &str = "kernel uses 0.5f32 internally";
            impl Kernel for Good {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let s = r#"fake 1.5f32 in a raw string"#;
                    let _ = ctx.fadd(F32::ZERO, F32::ONE);
                    Ok(())
                }
            }
        "##;
        assert!(rules_hit("crates/core/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn k002_flags_heap_io_and_nondeterminism() {
        let src = r#"
            impl Kernel for Sloppy {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let buf = vec![0u8; 64];
                    let t = std::time::Instant::now();
                    println!("free work");
                    Ok(())
                }
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k002: Vec<_> = findings.iter().filter(|f| f.rule == "K002").collect();
        assert!(k002.len() >= 3, "{findings:?}");
    }

    #[test]
    fn k002_exempts_format_on_fault_paths() {
        let src = r#"
            impl Kernel for Faulting {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    Err(KernelError::Fault(format!("bad header {}", 1)))
                }
            }
        "#;
        assert!(rules_hit("crates/core/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn k005_flags_host_threading_in_kernels_only() {
        let src = r#"
            impl Kernel for Bad {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    std::thread::spawn(|| {});
                    crossbeam::scope(|s| {});
                    Ok(())
                }
            }
            fn host_engine(n: usize) {
                crossbeam::scope(|s| { s.spawn(|_| {}); });
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k005: Vec<_> = findings.iter().filter(|f| f.rule == "K005").collect();
        // thread, spawn, crossbeam — all inside the kernel body only.
        assert_eq!(k005.len(), 3, "{findings:?}");
        assert!(k005.iter().all(|f| f.line <= 7), "{k005:?}");
    }

    #[test]
    fn k006_flags_fault_plan_access_in_kernels_only() {
        let src = r#"
            impl Kernel for Cheating {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    if self.config.faults.kernel_fault(0, 0) { return Ok(()); }
                    Ok(())
                }
            }
            fn host_side(config: &PimConfig) -> bool {
                let plan: &FaultPlan = &config.faults;
                plan.is_none()
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k006: Vec<_> = findings.iter().filter(|f| f.rule == "K006").collect();
        // Only the access inside the kernel body is flagged.
        assert_eq!(k006.len(), 1, "{findings:?}");
        assert!(k006[0].message.contains("faults"), "{k006:?}");
    }

    #[test]
    fn k007_flags_direct_arith_library_calls_in_kernels_only() {
        let src = r#"
            impl Kernel for Bypassing {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let mut t = OpTally::new();
                    let r = softfloat::f32_add(a, b, &mut t);
                    let w = emul::umul32_wide(x, y, &mut t);
                    let q = fastpath::f32_mul(a, b);
                    Ok(())
                }
            }
            fn host_side(a: u32, b: u32) -> u32 {
                softfloat::f32_add(a, b, &mut OpTally::new())
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k007: Vec<_> = findings.iter().filter(|f| f.rule == "K007").collect();
        // Only the three calls inside the kernel body are flagged.
        assert_eq!(k007.len(), 3, "{findings:?}");
        assert!(k007[0].message.contains("softfloat"), "{k007:?}");
        assert!(k007[1].message.contains("emul"), "{k007:?}");
        assert!(k007[2].message.contains("fastpath"), "{k007:?}");
    }

    #[test]
    fn k008_flags_telemetry_emission_in_kernels_only() {
        let src = r#"
            impl Kernel for Chatty {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    self.config.telemetry.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
                    Ok(())
                }
            }
            fn host_side(sink: &Telemetry) {
                sink.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k008: Vec<_> = findings.iter().filter(|f| f.rule == "K008").collect();
        // Flags `telemetry` and `emit` inside the kernel body; the
        // host-side emission below the impl block is untouched.
        assert_eq!(k008.len(), 2, "{findings:?}");
        assert!(k008[0].message.contains("telemetry"), "{k008:?}");
        assert!(k008[1].message.contains("emit"), "{k008:?}");
    }

    #[test]
    fn k011_flags_batched_tier_access_in_kernels_only() {
        let src = r#"
            impl Kernel for Fusing {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let plan = batch::granule_plan(8);
                    let w = BatchContext::wram_len(plan);
                    self.run_batched(w);
                    Ok(())
                }
                fn batch(&self) -> Option<&dyn BatchKernel> {
                    Some(self)
                }
            }
            fn host_side(b: &mut BatchContext<'_>) -> bool {
                batch::granule_plan(8) == b.run_batched_granule()
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k011: Vec<_> = findings.iter().filter(|f| f.rule == "K011").collect();
        // batch::, BatchContext, run_batched — inside `run` only; the
        // advertising `Kernel::batch` method and the host-side helper
        // below the impl are clean.
        assert_eq!(k011.len(), 3, "{findings:?}");
        assert!(k011.iter().all(|f| f.line <= 7), "{k011:?}");
        assert!(k011[0].message.contains("batch::"), "{k011:?}");
    }

    #[test]
    fn k004_flags_misaligned_layout_constant() {
        let src = r#"
            pub const HEADER_BYTES: usize = 64;
            pub const BAD_OFFSET: usize = HEADER_BYTES + 4;
            pub const RECORD_BYTES: usize = 2 * 6;
            pub const FINE_OFFSET: usize = (1 << 10) + 8 * 3;
            const NOT_LAYOUT: usize = 3;
        "#;
        let findings = check_file(Path::new("crates/core/src/layout.rs"), src);
        let k004: Vec<_> = findings.iter().filter(|f| f.rule == "K004").collect();
        let names: Vec<_> = k004.iter().map(|f| f.message.clone()).collect();
        assert_eq!(k004.len(), 2, "{names:?}");
        assert!(names.iter().any(|m| m.contains("BAD_OFFSET")));
        assert!(names.iter().any(|m| m.contains("RECORD_BYTES")));
    }

    #[test]
    fn k004_skips_unevaluable_expressions() {
        let src = r#"
            pub const DYNAMIC_BYTES: usize = core::mem::size_of::<Header>();
        "#;
        assert!(rules_hit("crates/core/src/layout.rs", src).is_empty());
    }

    #[test]
    fn k009_and_k010_flag_bad_regions() {
        let src = r#"
            pub const WRAM_Q_OFFSET: usize = 0;
            pub const WRAM_Q_BYTES: usize = 64 * 1024;
            pub const WRAM_BATCH_OFFSET: usize = 1024;
            pub const WRAM_BATCH_BYTES: usize = 2048;
            pub const MRAM_HEADER_OFFSET: usize = 0;
            pub const MRAM_HEADER_BYTES: usize = 64;
            pub const MRAM_Q_OFFSET: usize = 32;
            pub const MRAM_Q_BYTES: usize = 128;
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k009: Vec<_> = findings.iter().filter(|f| f.rule == "K009").collect();
        let k010: Vec<_> = findings.iter().filter(|f| f.rule == "K010").collect();
        // WRAM: Q fills the whole 64 KB, so BATCH both overlaps it and
        // (offset 1024 + 2048 ≤ cap) stays in capacity → exactly one
        // overlap finding. MRAM: Q starts inside the header.
        assert_eq!(k009.len(), 1, "{findings:?}");
        assert!(k009[0].message.contains("overlap"), "{k009:?}");
        assert_eq!(k010.len(), 1, "{findings:?}");
        assert!(k010[0].message.contains("overlap"), "{k010:?}");
    }

    #[test]
    fn d001_flags_hashed_collections_in_determinism_scope_only() {
        let src = r#"
            use std::collections::HashMap;
            pub fn merge(stats: &[u64]) -> HashMap<usize, u64> { HashMap::new() }
            #[cfg(test)]
            mod tests { use std::collections::HashMap; fn t() { let _: HashMap<u32, u32> = HashMap::new(); } }
        "#;
        let findings = check_file(Path::new("crates/core/src/engine.rs"), src);
        let d001: Vec<_> = findings.iter().filter(|f| f.rule == "D001").collect();
        assert_eq!(d001.len(), 3, "{findings:?}"); // use + return type + ctor
        // Out of determinism scope: the analysis crate itself and tests.
        assert!(rules_hit("crates/analysis/src/rules.rs", src).is_empty());
        assert!(rules_hit("tests/analysis_clean.rs", src).is_empty());
    }

    #[test]
    fn d002_flags_ambient_time_and_entropy() {
        let src = r#"
            pub fn measure() -> u64 {
                let t = std::time::Instant::now();
                let s = SystemTime::now();
                let r = thread_rng();
                0
            }
        "#;
        let findings = check_file(Path::new("crates/rl/src/train.rs"), src);
        let d002: Vec<_> = findings.iter().filter(|f| f.rule == "D002").collect();
        assert_eq!(d002.len(), 3, "{findings:?}");
        // The baselines crate measures wall-clock by design — out of scope.
        assert!(rules_hit("crates/baselines/src/cpu_exec.rs", src).is_empty());
    }

    #[test]
    fn d003_flags_env_reads_outside_binaries() {
        let src = r#"
            pub fn configured() -> Option<String> { std::env::var("SWIFTRL_X").ok() }
        "#;
        let findings = check_file(Path::new("crates/pim/src/config.rs"), src);
        let d003: Vec<_> = findings.iter().filter(|f| f.rule == "D003").collect();
        assert_eq!(d003.len(), 1, "{findings:?}");
        // Binaries and the bench CLI crate parse the environment at the edge.
        assert!(rules_hit("crates/analysis/src/main.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/lib.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/bin/sweep.rs", src).is_empty());
    }

    #[test]
    fn w001_flags_unwrap_outside_tests_only() {
        let src = r#"
            pub fn lib_code(v: Option<u32>) -> u32 { v.unwrap() }
            pub fn lib_code2(v: Option<u32>) -> u32 { v.expect("msg") }
            pub fn fine(v: Option<u32>) -> u32 { v.unwrap_or(0) }
            #[cfg(test)]
            mod tests {
                fn test_code(v: Option<u32>) -> u32 { v.unwrap() }
            }
        "#;
        let findings = check_file(Path::new("crates/pim/src/host.rs"), src);
        let w001: Vec<_> = findings.iter().filter(|f| f.rule == "W001").collect();
        assert_eq!(w001.len(), 2, "{findings:?}");
    }

    #[test]
    fn w001_skips_bins_tests_and_out_of_scope_paths() {
        let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }";
        assert!(rules_hit("crates/bench/src/bin/sweep.rs", src).is_empty());
        assert!(rules_hit("crates/analysis/src/main.rs", src).is_empty());
        assert!(rules_hit("tests/failure_paths.rs", src).is_empty());
        assert!(rules_hit("crates/bench/benches/fig7.rs", src).is_empty());
        assert!(rules_hit("examples/custom_kernel.rs", src).is_empty());
        assert_eq!(rules_hit("crates/rl/src/qtable.rs", src), ["W001"]);
    }

    #[test]
    fn k003_flags_uncharged_intrinsic() {
        let kernel_src = r#"
            impl<'a> DpuContext<'a> {
                pub fn charge_alu(&mut self, n: u64) { self.counter.charge(OpClass::Alu, n); }
                pub fn add32(&mut self, a: u32, b: u32) -> u32 {
                    self.charge_alu(1);
                    a.wrapping_add(b)
                }
                pub fn double(&mut self, a: u32) -> u32 { self.add32(a, a) }
                pub fn sneaky(&mut self, a: u32) -> u32 { a ^ 1 }
                pub fn tasklet_id(&self) -> usize { self.tasklet_id }
                fn internal(&mut self) {}
            }
        "#;
        let config_src = r#"
            pub struct OpCosts { pub mul32_slots: u64, pub unused_slots: u64 }
        "#;
        let findings = check_charge_coverage(
            Path::new("crates/pim/src/kernel.rs"),
            kernel_src,
            Path::new("crates/pim/src/config.rs"),
            config_src,
        );
        let msgs: Vec<_> = findings.iter().map(|f| f.message.as_str()).collect();
        // `sneaky` is uncharged; `double` delegates to add32 (charged);
        // accessors and private helpers are exempt. `unused_slots` has no
        // consumer; `mul32_slots` is absent from this synthetic kernel too.
        assert!(msgs.iter().any(|m| m.contains("sneaky")), "{msgs:?}");
        assert!(!msgs.iter().any(|m| m.contains("double")), "{msgs:?}");
        assert!(!msgs.iter().any(|m| m.contains("tasklet_id")), "{msgs:?}");
        assert!(!msgs.iter().any(|m| m.contains("internal")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("unused_slots")), "{msgs:?}");
    }

    #[test]
    fn k003_transitive_delegation_wave() {
        // c -> b -> a -> charge: requires more than one fixed-point pass.
        let kernel_src = r#"
            impl<'a> DpuContext<'a> {
                pub fn a(&mut self) { self.counter.charge(OpClass::Alu, 1); }
                pub fn b(&mut self) { self.a(); }
                pub fn c(&mut self) { self.b(); }
            }
        "#;
        let findings = check_charge_coverage(
            Path::new("k.rs"),
            kernel_src,
            Path::new("c.rs"),
            "pub struct OpCosts {}",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn platform_intrinsics_are_not_kernel_scanned() {
        // DpuContext/F32 inherent impls legitimately mention f32 and the
        // arithmetic libraries; they are the charged boundary (K003's
        // jurisdiction), not kernel code.
        let src = r#"
            impl<'a> DpuContext<'a> {
                pub fn fadd(&mut self, a: F32, b: F32) -> F32 {
                    self.charge_float_slots(1);
                    F32(softfloat::f32_add(a.0, b.0, &mut self.tally))
                }
            }
            impl F32 {
                pub fn from_f32(v: f32) -> F32 { F32(v.to_bits()) }
            }
        "#;
        assert!(rules_hit("crates/pim/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn rule_registry_is_complete() {
        let ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            [
                "K001", "K002", "K003", "K004", "K005", "K006", "K007", "K008", "K009", "K010",
                "K011", "D001", "D002", "D003", "W001"
            ]
        );
        for r in RULES {
            assert!(!r.explain.is_empty() && !r.fix_hint.is_empty(), "{}", r.id);
            assert!(!r.example.is_empty() && !r.scope.is_empty(), "{}", r.id);
        }
        assert!(rule_info("k002").is_some());
        assert!(rule_info("d001").is_some());
        assert!(rule_info("K999").is_none());
    }
}
