//! The lint rule registry and rule implementations.
//!
//! Every rule has a stable ID (`K00x` for kernel-discipline rules, `W00x`
//! for workspace-hygiene rules), a one-paragraph explanation available via
//! `--explain`, and a fix hint available via `--fix-hints`. Rules operate
//! on the token stream produced by [`crate::scanner`]; literal contents are
//! opaque, so violations quoted inside strings (e.g. in this file's own
//! tests) never trip the analyzer.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::scanner::{matching_brace, tokenize, Token, TokenKind};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule ID (`K001`..`K008`, `W001`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Static metadata for one rule, surfaced by `--explain` / `--fix-hints`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule ID.
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Multi-line explanation of what the rule enforces and why.
    pub explain: &'static str,
    /// Short suggestion for fixing a violation.
    pub fix_hint: &'static str,
}

/// All registered rules, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "K001",
        title: "no host floats in kernel code",
        explain: "Kernel code (any `impl Kernel for ...` block, or any function \
taking a `DpuContext` parameter) must not use host `f32`/`f64` types or float \
literals. The DPU has no FPU: every float op must be an emulated, *charged* \
intrinsic (`DpuContext::fadd`, `fmul`, ...) operating on the \
`swiftrl_pim::kernel::F32` bit-pattern newtype. Host-float leaks silently \
skip the soft-float cycle charges that SwiftRL's FP32-vs-INT32 comparison \
(ISPASS'24 Fig. 7) is built on, making reported cycle counts too fast.",
        fix_hint: "wrap the bits in `F32` and route arithmetic through \
`DpuContext::{fadd,fsub,fmul,fdiv,fgt,fmax,i32_to_f32,f32_to_i32}`",
    },
    RuleInfo {
        id: "K002",
        title: "no nondeterminism or free work in kernel bodies",
        explain: "Kernel bodies must be deterministic and fully charged. Heap \
allocation (`vec!`, `Vec`, `Box`, `String`, `to_vec`, `to_bytes`, ...), host \
I/O (`println!`, `dbg!`), wall-clock time (`std::time`, `Instant`), and \
`rand::` are all host-runtime services a real DPU tasklet does not have; \
using them either costs zero charged cycles (free work) or makes runs \
non-reproducible. Use fixed-size stack buffers, the charged `lcg_next` \
intrinsic for randomness, and `DpuContext` DMA for data movement. \
(`format!` on fault paths is exempt: faults abort cycle accounting anyway. \
Host threading has its own rule, K005.)",
        fix_hint: "replace heap buffers with fixed-size arrays, encode into \
caller-provided `&mut [u8]`, and delete host I/O from kernel bodies",
    },
    RuleInfo {
        id: "K003",
        title: "every DpuContext intrinsic charges a cost",
        explain: "Every public `&mut self` method on `DpuContext` is an \
intrinsic kernels can call, so it must charge at least one `OpClass` — \
directly (`charge_alu`, `charge_dma`, ...) or by delegating to a charged \
intrinsic. Additionally every field of `pim::config::OpCosts` must be \
referenced by some intrinsic, so a calibrated cost can never silently go \
unused. Adding an intrinsic without a charge (or a cost without a consumer) \
is exactly the bug class that would quietly corrupt the paper's cycle model.",
        fix_hint: "add the appropriate `self.charge_*(...)` call to the new \
intrinsic, or wire the new `OpCosts` field into the intrinsic that consumes it",
    },
    RuleInfo {
        id: "K004",
        title: "MRAM layout constants are 8-byte aligned",
        explain: "The UPMEM DMA engine moves MRAM<->WRAM data in 8-byte \
granules, and the simulator (like the hardware) rejects misaligned \
transfers. Any constant named `*_OFFSET` or `*_BYTES` that describes MRAM \
layout must therefore be a multiple of 8. The rule evaluates simple constant \
expressions (literals, references to other constants, `+`, `-`, `*`, `<<`) \
and flags any resolvable value not divisible by 8.",
        fix_hint: "round the offset/record size up to the next multiple of 8 \
and pad the on-MRAM layout accordingly",
    },
    RuleInfo {
        id: "K005",
        title: "no host threading in kernel code",
        explain: "Kernel code must not use host threading primitives — \
`std::thread`, `spawn`, `crossbeam`, `rayon`. Host-level parallelism belongs \
to the execution engine (`pim::engine::ExecutionEngine`), which already fans \
DPU execution out over worker threads and guarantees bit-identical results \
via its ordered merge. A kernel that spawns its own OS threads does work the \
cycle model never charges, races the engine's disjoint-chunk ownership of \
DPU state, and destroys the Serial/Threaded determinism contract. Intra-DPU \
parallelism must instead go through the charged tasklet model.",
        fix_hint: "delete the threading; parallelism across DPUs comes from \
`PimConfig::engine`, parallelism within a DPU from tasklets",
    },
    RuleInfo {
        id: "K006",
        title: "no fault-plan access in kernel code",
        explain: "Kernel code must not read or mention the fault-injection \
plan (`FaultPlan`, the `faults` field of `PimConfig`). Fault injection is a \
*platform* behaviour: the simulated DPU aborts, straggles, or corrupts \
memory from the outside, exactly as real hardware fails underneath an \
oblivious kernel. A kernel that branches on the fault plan simulates a \
program that knows when it will crash — its cycle accounting and its \
Serial/Threaded determinism contract both stop meaning anything, and the \
resilience layer's retry-replay argument (a faulted launch left MRAM \
untouched) silently breaks.",
        fix_hint: "delete the fault-plan access; inject faults only through \
`PimConfig::faults`, and keep kernels oblivious to them",
    },
    RuleInfo {
        id: "K007",
        title: "no direct arithmetic-library calls in kernel code",
        explain: "Kernel code must not call the arithmetic libraries \
(`softfloat`, `emul`, `fastpath`) directly: those modules compute values \
without charging DPU cycles, so a direct call does work the cycle model \
never sees. Worse, it bypasses the two-tier dispatch — the `DpuContext` \
intrinsics are the only place where the configured `ArithTier` selects \
between the instrumented reference implementation and the fast host-native \
one, and both tiers are proven bit- and cycle-identical only through that \
dispatch. A kernel calling `softfloat::f32_add` directly pins one tier, \
charges nothing, and silently breaks the parity contract.",
        fix_hint: "go through the charged `DpuContext` intrinsics (`fadd`, \
`fmul`, `mul32`, `lcg_next`, ...); they charge cycles and dispatch to the \
configured arithmetic tier",
    },
    RuleInfo {
        id: "K008",
        title: "no telemetry emission in kernel code",
        explain: "Kernel code must not touch the telemetry layer (the \
`telemetry` module, the `Telemetry` sink, or its `emit` method). Telemetry \
is a *host-side* observer: events are recorded after `DpuSet::launch_on` \
has merged per-DPU results in DPU-index order, which is what makes the \
event stream byte-identical between the Serial and Threaded engines. A \
kernel that emits events would observe execution from inside a worker \
thread — ordering would depend on the engine's scheduling, breaking the \
determinism contract — and the sink's mutex and event allocation would do \
host work the cycle model never charges.",
        fix_hint: "delete the telemetry call; instrument at the host layer \
instead — `DpuSet` and the runner already emit transfer, launch, and sync \
events for every kernel execution",
    },
    RuleInfo {
        id: "W001",
        title: "no unwrap/expect in library code",
        explain: "Library crates (`crates/*/src/**`, excluding binaries and \
`#[cfg(test)]` code) must not call `.unwrap()` or `.expect(...)`: a panic \
inside the simulator or an RL loop tears down the whole host process instead \
of surfacing a typed error. Return `Result`, use `unwrap_or`/`map_or` with a \
documented default, or `std::panic::resume_unwind` when re-raising a worker \
panic is genuinely intended.",
        fix_hint: "propagate a typed error with `?`, or handle the `None`/`Err` \
arm explicitly",
    },
];

/// Looks up rule metadata by ID (case-insensitive).
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(id.trim()))
}

// ---------------------------------------------------------------------------
// Region detection
// ---------------------------------------------------------------------------

/// Returns the matching close delimiter index for the opener at `open_idx`.
fn matching_delim(tokens: &[Token<'_>], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Token index ranges (inclusive of braces) that count as *kernel code*:
/// bodies of `impl Kernel for ...` blocks and bodies of functions that take
/// a `DpuContext` parameter.
fn kernel_regions(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            let mut j = i + 1;
            let (mut saw_kernel, mut saw_for) = (false, false);
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                saw_kernel |= tokens[j].is_ident("Kernel");
                saw_for |= tokens[j].is_ident("for");
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') && saw_kernel && saw_for {
                let end = matching_brace(tokens, j);
                regions.push((j, end));
                i = end + 1;
                continue;
            }
        }
        if tokens[i].is_ident("fn") {
            let mut j = i + 1;
            while j < tokens.len()
                && !tokens[j].is_punct('(')
                && !tokens[j].is_punct('{')
                && !tokens[j].is_punct(';')
            {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('(') {
                let close = matching_delim(tokens, j, '(', ')');
                let has_ctx = tokens[j..close.min(tokens.len())]
                    .iter()
                    .any(|t| t.is_ident("DpuContext"));
                if has_ctx {
                    let mut k = close + 1;
                    while k < tokens.len() && !tokens[k].is_punct('{') && !tokens[k].is_punct(';')
                    {
                        k += 1;
                    }
                    if k < tokens.len() && tokens[k].is_punct('{') {
                        let end = matching_brace(tokens, k);
                        regions.push((k, end));
                        i = end + 1;
                        continue;
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

// ---------------------------------------------------------------------------
// K001 / K002: kernel-body discipline
// ---------------------------------------------------------------------------

const K002_ALLOC: &[&str] = &[
    "vec", "Vec", "Box", "String", "to_vec", "to_string", "to_owned", "to_bytes", "HashMap",
    "BTreeMap", "VecDeque",
];
const K002_IO: &[&str] = &["println", "print", "eprintln", "eprint", "dbg", "write", "writeln"];
const K002_NONDET: &[&str] = &["rand", "Instant", "SystemTime", "sleep"];
const K005_THREADING: &[&str] = &["thread", "spawn", "crossbeam", "rayon"];
const K006_FAULTS: &[&str] = &["FaultPlan", "faults"];
const K007_ARITH: &[&str] = &["softfloat", "emul", "fastpath"];
const K008_TELEMETRY: &[&str] = &["telemetry", "Telemetry", "emit"];

fn check_kernel_regions(file: &Path, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    for &(start, end) in &kernel_regions(tokens) {
        let body = &tokens[start..=end.min(tokens.len() - 1)];
        for (off, t) in body.iter().enumerate() {
            match t.kind {
                TokenKind::FloatLit => findings.push(Finding {
                    file: file.to_path_buf(),
                    line: t.line,
                    rule: "K001",
                    message: format!(
                        "host float literal `{}` in kernel code; use `F32` bits and \
                         charged `DpuContext` intrinsics",
                        t.text
                    ),
                }),
                TokenKind::Ident if t.text == "f32" || t.text == "f64" => {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: t.line,
                        rule: "K001",
                        message: format!(
                            "host `{}` type in kernel code; the DPU has no FPU — use \
                             `F32` and the soft-float intrinsics",
                            t.text
                        ),
                    })
                }
                TokenKind::Ident if K005_THREADING.contains(&t.text) => {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: t.line,
                        rule: "K005",
                        message: format!(
                            "`{}` in kernel body (host threading); parallelism \
                             belongs to the execution engine and the tasklet model",
                            t.text
                        ),
                    })
                }
                TokenKind::Ident if K006_FAULTS.contains(&t.text) => {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: t.line,
                        rule: "K006",
                        message: format!(
                            "`{}` in kernel body (fault-plan access); faults are \
                             a platform behaviour and kernels must stay oblivious \
                             to them",
                            t.text
                        ),
                    })
                }
                TokenKind::Ident if K007_ARITH.contains(&t.text) => {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: t.line,
                        rule: "K007",
                        message: format!(
                            "`{}` in kernel body (uncharged arithmetic-library \
                             call); go through the charged `DpuContext` \
                             intrinsics, which also dispatch the configured \
                             arithmetic tier",
                            t.text
                        ),
                    })
                }
                TokenKind::Ident if K008_TELEMETRY.contains(&t.text) => {
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: t.line,
                        rule: "K008",
                        message: format!(
                            "`{}` in kernel body (telemetry emission); the \
                             event stream is a host-side observer recorded \
                             after the engine's ordered merge — kernels must \
                             not emit into it",
                            t.text
                        ),
                    })
                }
                TokenKind::Ident => {
                    let reason = if K002_ALLOC.contains(&t.text) {
                        Some("heap allocation")
                    } else if K002_IO.contains(&t.text) {
                        // `write`/`writeln` only matter as macros; a plain
                        // method call `x.write(...)` is fine, so gate the io
                        // set on a following `!`.
                        if body.get(off + 1).is_some_and(|n| n.is_punct('!')) {
                            Some("host I/O")
                        } else {
                            None
                        }
                    } else if K002_NONDET.contains(&t.text) {
                        Some("nondeterministic host service")
                    } else if t.text == "time"
                        && off >= 3
                        && body[off - 1].is_punct(':')
                        && body[off - 2].is_punct(':')
                        && body[off - 3].is_ident("std")
                    {
                        Some("wall-clock time")
                    } else {
                        None
                    };
                    if let Some(reason) = reason {
                        findings.push(Finding {
                            file: file.to_path_buf(),
                            line: t.line,
                            rule: "K002",
                            message: format!(
                                "`{}` in kernel body ({reason}); kernels must be \
                                 deterministic and fully cycle-charged",
                                t.text
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// K004: layout alignment
// ---------------------------------------------------------------------------

struct ConstDef {
    line: u32,
    expr: (usize, usize), // token range [start, end) of the initializer
}

/// Collects `const NAME: TY = EXPR;` definitions (at any nesting depth).
fn collect_consts<'s>(tokens: &'s [Token<'s>]) -> HashMap<&'s str, ConstDef> {
    let mut defs = HashMap::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("const")
            && tokens[i + 1].kind == TokenKind::Ident
            && tokens[i + 2].is_punct(':')
        {
            let name = tokens[i + 1].text;
            let line = tokens[i + 1].line;
            // Skip the type annotation up to the `=` (or bail at `;`).
            let mut j = i + 3;
            while j < tokens.len() && !tokens[j].is_punct('=') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('=') {
                let expr_start = j + 1;
                let mut k = expr_start;
                let mut depth = 0i32;
                while k < tokens.len() {
                    if tokens[k].is_punct('(') || tokens[k].is_punct('[') {
                        depth += 1;
                    } else if tokens[k].is_punct(')') || tokens[k].is_punct(']') {
                        depth -= 1;
                    } else if tokens[k].is_punct(';') && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                defs.insert(name, ConstDef { line, expr: (expr_start, k) });
                i = k;
                continue;
            }
        }
        i += 1;
    }
    defs
}

/// Evaluates a small constant-expression subset: integer literals, names of
/// other constants in the same file, parentheses, `+`, `-`, `*`, `<<`.
/// Returns `None` for anything it does not understand (method calls, paths).
struct ConstEval<'s, 'd> {
    tokens: &'s [Token<'s>],
    defs: &'d HashMap<&'s str, ConstDef>,
    memo: HashMap<&'s str, Option<u64>>,
    visiting: BTreeSet<String>,
}

impl<'s, 'd> ConstEval<'s, 'd> {
    fn resolve(&mut self, name: &'s str) -> Option<u64> {
        if let Some(v) = self.memo.get(name) {
            return *v;
        }
        if self.visiting.contains(name) {
            return None; // cycle
        }
        self.visiting.insert(name.to_string());
        let v = match self.defs.get(name).map(|d| d.expr) {
            Some((s, e)) => self.eval_range(s, e),
            None => None,
        };
        self.visiting.remove(name);
        self.memo.insert(name, v);
        v
    }

    fn eval_range(&mut self, start: usize, end: usize) -> Option<u64> {
        let mut pos = start;
        let v = self.shift(&mut pos, end)?;
        if pos == end {
            Some(v)
        } else {
            None // trailing tokens we do not understand
        }
    }

    fn shift(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        let mut acc = self.additive(pos, end)?;
        while *pos + 1 < end
            && self.tokens[*pos].is_punct('<')
            && self.tokens[*pos + 1].is_punct('<')
        {
            *pos += 2;
            let rhs = self.additive(pos, end)?;
            acc = acc.checked_shl(u32::try_from(rhs).ok()?)?;
        }
        Some(acc)
    }

    fn additive(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        let mut acc = self.multiplicative(pos, end)?;
        while *pos < end {
            if self.tokens[*pos].is_punct('+') {
                *pos += 1;
                acc = acc.checked_add(self.multiplicative(pos, end)?)?;
            } else if self.tokens[*pos].is_punct('-') {
                *pos += 1;
                acc = acc.checked_sub(self.multiplicative(pos, end)?)?;
            } else {
                break;
            }
        }
        Some(acc)
    }

    fn multiplicative(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        let mut acc = self.atom(pos, end)?;
        while *pos < end && self.tokens[*pos].is_punct('*') {
            *pos += 1;
            acc = acc.checked_mul(self.atom(pos, end)?)?;
        }
        Some(acc)
    }

    fn atom(&mut self, pos: &mut usize, end: usize) -> Option<u64> {
        if *pos >= end {
            return None;
        }
        let t = &self.tokens[*pos];
        let v = if t.is_punct('(') {
            let close = matching_delim(self.tokens, *pos, '(', ')');
            if close >= end {
                return None;
            }
            let inner = self.eval_range(*pos + 1, close)?;
            *pos = close + 1;
            inner
        } else if t.kind == TokenKind::IntLit {
            *pos += 1;
            parse_int(t.text)?
        } else if t.kind == TokenKind::Ident {
            let name = t.text;
            *pos += 1;
            self.resolve(name)?
        } else {
            return None;
        };
        // Tolerate a trailing `as <type>` cast.
        if *pos + 1 < end && self.tokens[*pos].is_ident("as") {
            if self.tokens[*pos + 1].kind == TokenKind::Ident {
                *pos += 2;
            } else {
                return None;
            }
        }
        Some(v)
    }
}

/// Parses a Rust integer literal (underscores, radix prefixes, suffixes).
fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (body, radix): (&str, u32) = if let Some(rest) = clean.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = clean.strip_prefix("0b") {
        (rest, 2)
    } else if let Some(rest) = clean.strip_prefix("0o") {
        (rest, 8)
    } else {
        (clean.as_str(), 10)
    };
    // Split the digits from any type suffix (`u32`, `usize`, ...).
    let end = body
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(body.len());
    u64::from_str_radix(&body[..end], radix).ok()
}

fn check_alignment(file: &Path, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    let defs = collect_consts(tokens);
    let mut eval = ConstEval {
        tokens,
        defs: &defs,
        memo: HashMap::new(),
        visiting: BTreeSet::new(),
    };
    let mut names: Vec<&str> = defs
        .keys()
        .copied()
        .filter(|n| n.ends_with("_OFFSET") || n.ends_with("_BYTES"))
        .collect();
    names.sort_unstable();
    for name in names {
        if let Some(v) = eval.resolve(name) {
            if v % 8 != 0 {
                let line = eval.defs.get(name).map_or(0, |d| d.line);
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line,
                    rule: "K004",
                    message: format!(
                        "layout constant `{name}` = {v} is not 8-byte aligned \
                         (DMA granule)",
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// W001: unwrap/expect in library code
// ---------------------------------------------------------------------------

/// True if W001 applies to this repo-relative path: library sources under
/// `crates/*/src/`, excluding binary roots (`src/main.rs`, `src/bin/`).
fn w001_applies(file: &Path) -> bool {
    let p: Vec<&str> = file
        .iter()
        .map(|c| c.to_str().unwrap_or_default())
        .collect();
    if p.first() != Some(&"crates") {
        return false;
    }
    let Some(src_at) = p.iter().position(|c| *c == "src") else {
        return false;
    };
    if p.get(src_at + 1) == Some(&"bin") {
        return false;
    }
    p.last() != Some(&"main.rs")
}

/// Computes which token indexes sit inside `#[cfg(test)]`-gated items.
fn cfg_test_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 3 < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
        {
            let close_paren = matching_delim(tokens, i + 3, '(', ')');
            let attr = &tokens[i + 3..close_paren.min(tokens.len())];
            // `cfg(not(test))` gates *production* code: never mask it.
            let gated_on_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            let attr_end = close_paren + 1; // the `]`
            if gated_on_test && attr_end < tokens.len() {
                // Skip the gated item: to the first `{` (then its match) or
                // a `;`, whichever comes first.
                let mut j = attr_end + 1;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                let item_end = if j < tokens.len() && tokens[j].is_punct('{') {
                    matching_brace(tokens, j)
                } else {
                    j
                };
                for m in mask
                    .iter_mut()
                    .take(item_end.saturating_add(1).min(tokens.len()))
                    .skip(i)
                {
                    *m = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

fn check_unwraps(file: &Path, tokens: &[Token<'_>], findings: &mut Vec<Finding>) {
    if !w001_applies(file) {
        return;
    }
    let mask = cfg_test_mask(tokens);
    for i in 1..tokens.len() {
        if mask[i] {
            continue;
        }
        let t = &tokens[i];
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            findings.push(Finding {
                file: file.to_path_buf(),
                line: t.line,
                rule: "W001",
                message: format!(
                    "`.{}()` in library code; propagate a typed error instead",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// K003: charge coverage of DpuContext intrinsics and OpCosts fields
// ---------------------------------------------------------------------------

struct Method<'s> {
    name: &'s str,
    line: u32,
    is_pub: bool,
    takes_mut_self: bool,
    body: (usize, usize),
}

/// Extracts methods from every inherent `impl ... DpuContext ...` block
/// (trait impls — headers containing `for` — are exempt).
fn dpu_context_methods<'s>(tokens: &'s [Token<'s>]) -> Vec<Method<'s>> {
    let mut methods = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let (mut saw_ctx, mut saw_for) = (false, false);
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            saw_ctx |= tokens[j].is_ident("DpuContext");
            saw_for |= tokens[j].is_ident("for");
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('{') || !saw_ctx || saw_for {
            i = j + 1;
            continue;
        }
        let block_end = matching_brace(tokens, j);
        let mut k = j + 1;
        let mut last_item_boundary = j; // `{`, `}`, or `;` before the item
        while k < block_end {
            if tokens[k].is_punct('{') {
                // A nested block that is not a method body we recognized —
                // skip it wholesale (e.g. const items with blocks).
                k = matching_brace(tokens, k) + 1;
                last_item_boundary = k.saturating_sub(1);
                continue;
            }
            if tokens[k].is_punct(';') {
                last_item_boundary = k;
                k += 1;
                continue;
            }
            if tokens[k].is_ident("fn") {
                let is_pub = tokens[last_item_boundary..k]
                    .iter()
                    .any(|t| t.is_ident("pub"));
                let name_idx = k + 1;
                let name = match tokens.get(name_idx) {
                    Some(t) if t.kind == TokenKind::Ident => t.text,
                    _ => {
                        k += 1;
                        continue;
                    }
                };
                let line = tokens[name_idx].line;
                let mut p = name_idx + 1;
                while p < block_end && !tokens[p].is_punct('(') {
                    p += 1;
                }
                let params_end = matching_delim(tokens, p, '(', ')');
                let takes_mut_self = {
                    let ps = &tokens[p + 1..params_end.min(tokens.len())];
                    ps.first().is_some_and(|t| t.is_punct('&'))
                        && ps.iter().take(4).any(|t| t.is_ident("mut"))
                        && ps.iter().take(4).any(|t| t.is_ident("self"))
                };
                let mut b = params_end + 1;
                while b < block_end && !tokens[b].is_punct('{') && !tokens[b].is_punct(';') {
                    b += 1;
                }
                if b < block_end && tokens[b].is_punct('{') {
                    let body_end = matching_brace(tokens, b);
                    methods.push(Method {
                        name,
                        line,
                        is_pub,
                        takes_mut_self,
                        body: (b, body_end),
                    });
                    k = body_end + 1;
                    last_item_boundary = body_end;
                    continue;
                }
                k = b + 1;
                last_item_boundary = b;
                continue;
            }
            k += 1;
        }
        i = block_end + 1;
    }
    methods
}

/// Checks that every public `&mut self` intrinsic on `DpuContext` charges an
/// `OpClass`, and that every `OpCosts` field is consumed by some intrinsic.
pub fn check_charge_coverage(
    kernel_file: &Path,
    kernel_src: &str,
    config_file: &Path,
    config_src: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = tokenize(kernel_src);
    let methods = dpu_context_methods(&tokens);

    // Direct charges: any identifier starting with `charge` in the body.
    let mut charged: BTreeSet<&str> = methods
        .iter()
        .filter(|m| {
            tokens[m.body.0..=m.body.1.min(tokens.len() - 1)]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text.starts_with("charge"))
        })
        .map(|m| m.name)
        .collect();

    // Transitive: a method that calls `self.<charged>(...)` is charged too.
    loop {
        let mut grew = false;
        for m in &methods {
            if charged.contains(m.name) {
                continue;
            }
            let body = &tokens[m.body.0..=m.body.1.min(tokens.len() - 1)];
            let delegates = body.windows(4).any(|w| {
                w[0].is_ident("self")
                    && w[1].is_punct('.')
                    && w[2].kind == TokenKind::Ident
                    && charged.contains(w[2].text)
                    && w[3].is_punct('(')
            });
            if delegates {
                charged.insert(m.name);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for m in &methods {
        if m.is_pub && m.takes_mut_self && !charged.contains(m.name) {
            findings.push(Finding {
                file: kernel_file.to_path_buf(),
                line: m.line,
                rule: "K003",
                message: format!(
                    "intrinsic `DpuContext::{}` never charges an OpClass; every \
                     public `&mut self` intrinsic must cost cycles",
                    m.name
                ),
            });
        }
    }

    // OpCosts fields must all be consumed by kernel.rs.
    let cfg_tokens = tokenize(config_src);
    let mut fields: Vec<(&str, u32)> = Vec::new();
    let mut i = 0usize;
    while i + 1 < cfg_tokens.len() {
        if cfg_tokens[i].is_ident("struct") && cfg_tokens[i + 1].is_ident("OpCosts") {
            let mut j = i + 2;
            while j < cfg_tokens.len() && !cfg_tokens[j].is_punct('{') {
                j += 1;
            }
            let end = matching_brace(&cfg_tokens, j);
            let mut k = j + 1;
            while k + 1 < end {
                if cfg_tokens[k].kind == TokenKind::Ident
                    && cfg_tokens[k + 1].is_punct(':')
                    && !cfg_tokens[k].is_ident("pub")
                {
                    fields.push((cfg_tokens[k].text, cfg_tokens[k].line));
                    // Skip the field's type up to the comma at depth 0.
                    let mut depth = 0i32;
                    while k < end {
                        if cfg_tokens[k].is_punct('<') || cfg_tokens[k].is_punct('(') {
                            depth += 1;
                        } else if cfg_tokens[k].is_punct('>') || cfg_tokens[k].is_punct(')') {
                            depth -= 1;
                        } else if cfg_tokens[k].is_punct(',') && depth <= 0 {
                            break;
                        }
                        k += 1;
                    }
                }
                k += 1;
            }
            break;
        }
        i += 1;
    }
    for (field, line) in fields {
        let used = tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == field);
        if !used {
            findings.push(Finding {
                file: config_file.to_path_buf(),
                line,
                rule: "K003",
                message: format!(
                    "`OpCosts::{field}` is never referenced by any DpuContext \
                     intrinsic; a calibrated cost must have a consumer"
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Per-file entry point
// ---------------------------------------------------------------------------

/// Runs all single-file rules (K001, K002, K004, K005, K006, K007, K008, W001)
/// over one source file.
/// `file` must be the repo-relative path; it selects which rules apply.
pub fn check_file(file: &Path, src: &str) -> Vec<Finding> {
    let tokens = tokenize(src);
    let mut findings = Vec::new();
    check_kernel_regions(file, &tokens, &mut findings);
    check_alignment(file, &tokens, &mut findings);
    check_unwraps(file, &tokens, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = check_file(Path::new(file), src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        r.dedup();
        r
    }

    #[test]
    fn k001_flags_host_float_kernel() {
        let src = r#"
            impl Kernel for Bad {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let x = 0.5f32;
                    let y = 2.0 * x as f64;
                    Ok(())
                }
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k001: Vec<_> = findings.iter().filter(|f| f.rule == "K001").collect();
        assert_eq!(k001.len(), 3, "{findings:?}"); // 0.5f32, 2.0, f64
        assert_eq!(k001[0].line, 4);
    }

    #[test]
    fn k001_flags_fn_taking_context_outside_impl() {
        let src = r#"
            fn helper(ctx: &mut DpuContext<'_>, v: u32) -> u32 {
                (v as f32) as u32
            }
        "#;
        assert_eq!(rules_hit("crates/core/src/kernels.rs", src), ["K001"]);
    }

    #[test]
    fn k001_ignores_host_code_and_strings() {
        let src = r##"
            fn host_side(x: f32) -> f32 { x * 0.5 }
            const MSG: &str = "kernel uses 0.5f32 internally";
            impl Kernel for Good {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let s = r#"fake 1.5f32 in a raw string"#;
                    let _ = ctx.fadd(F32::ZERO, F32::ONE);
                    Ok(())
                }
            }
        "##;
        assert!(rules_hit("crates/core/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn k002_flags_heap_io_and_nondeterminism() {
        let src = r#"
            impl Kernel for Sloppy {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let buf = vec![0u8; 64];
                    let t = std::time::Instant::now();
                    println!("free work");
                    Ok(())
                }
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k002: Vec<_> = findings.iter().filter(|f| f.rule == "K002").collect();
        assert!(k002.len() >= 3, "{findings:?}");
    }

    #[test]
    fn k002_exempts_format_on_fault_paths() {
        let src = r#"
            impl Kernel for Faulting {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    Err(KernelError::Fault(format!("bad header {}", 1)))
                }
            }
        "#;
        assert!(rules_hit("crates/core/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn k005_flags_host_threading_in_kernels_only() {
        let src = r#"
            impl Kernel for Bad {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    std::thread::spawn(|| {});
                    crossbeam::scope(|s| {});
                    Ok(())
                }
            }
            fn host_engine(n: usize) {
                crossbeam::scope(|s| { s.spawn(|_| {}); });
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k005: Vec<_> = findings.iter().filter(|f| f.rule == "K005").collect();
        // thread, spawn, crossbeam — all inside the kernel body only.
        assert_eq!(k005.len(), 3, "{findings:?}");
        assert!(k005.iter().all(|f| f.line <= 7), "{k005:?}");
    }

    #[test]
    fn k006_flags_fault_plan_access_in_kernels_only() {
        let src = r#"
            impl Kernel for Cheating {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    if self.config.faults.kernel_fault(0, 0) { return Ok(()); }
                    Ok(())
                }
            }
            fn host_side(config: &PimConfig) -> bool {
                let plan: &FaultPlan = &config.faults;
                plan.is_none()
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k006: Vec<_> = findings.iter().filter(|f| f.rule == "K006").collect();
        // Only the access inside the kernel body is flagged.
        assert_eq!(k006.len(), 1, "{findings:?}");
        assert!(k006[0].message.contains("faults"), "{k006:?}");
    }

    #[test]
    fn k007_flags_direct_arith_library_calls_in_kernels_only() {
        let src = r#"
            impl Kernel for Bypassing {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    let mut t = OpTally::new();
                    let r = softfloat::f32_add(a, b, &mut t);
                    let w = emul::umul32_wide(x, y, &mut t);
                    let q = fastpath::f32_mul(a, b);
                    Ok(())
                }
            }
            fn host_side(a: u32, b: u32) -> u32 {
                softfloat::f32_add(a, b, &mut OpTally::new())
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k007: Vec<_> = findings.iter().filter(|f| f.rule == "K007").collect();
        // Only the three calls inside the kernel body are flagged.
        assert_eq!(k007.len(), 3, "{findings:?}");
        assert!(k007[0].message.contains("softfloat"), "{k007:?}");
        assert!(k007[1].message.contains("emul"), "{k007:?}");
        assert!(k007[2].message.contains("fastpath"), "{k007:?}");
    }

    #[test]
    fn k008_flags_telemetry_emission_in_kernels_only() {
        let src = r#"
            impl Kernel for Chatty {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                    self.config.telemetry.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
                    Ok(())
                }
            }
            fn host_side(sink: &Telemetry) {
                sink.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
            }
        "#;
        let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
        let k008: Vec<_> = findings.iter().filter(|f| f.rule == "K008").collect();
        // Flags `telemetry` and `emit` inside the kernel body; the
        // host-side emission below the impl block is untouched.
        assert_eq!(k008.len(), 2, "{findings:?}");
        assert!(k008[0].message.contains("telemetry"), "{k008:?}");
        assert!(k008[1].message.contains("emit"), "{k008:?}");
    }

    #[test]
    fn k004_flags_misaligned_layout_constant() {
        let src = r#"
            pub const HEADER_BYTES: usize = 64;
            pub const BAD_OFFSET: usize = HEADER_BYTES + 4;
            pub const RECORD_BYTES: usize = 2 * 6;
            pub const FINE_OFFSET: usize = (1 << 10) + 8 * 3;
            const NOT_LAYOUT: usize = 3;
        "#;
        let findings = check_file(Path::new("crates/core/src/layout.rs"), src);
        let k004: Vec<_> = findings.iter().filter(|f| f.rule == "K004").collect();
        let names: Vec<_> = k004.iter().map(|f| f.message.clone()).collect();
        assert_eq!(k004.len(), 2, "{names:?}");
        assert!(names.iter().any(|m| m.contains("BAD_OFFSET")));
        assert!(names.iter().any(|m| m.contains("RECORD_BYTES")));
    }

    #[test]
    fn k004_skips_unevaluable_expressions() {
        let src = r#"
            pub const DYNAMIC_BYTES: usize = core::mem::size_of::<Header>();
        "#;
        assert!(rules_hit("crates/core/src/layout.rs", src).is_empty());
    }

    #[test]
    fn w001_flags_unwrap_outside_tests_only() {
        let src = r#"
            pub fn lib_code(v: Option<u32>) -> u32 { v.unwrap() }
            pub fn lib_code2(v: Option<u32>) -> u32 { v.expect("msg") }
            pub fn fine(v: Option<u32>) -> u32 { v.unwrap_or(0) }
            #[cfg(test)]
            mod tests {
                fn test_code(v: Option<u32>) -> u32 { v.unwrap() }
            }
        "#;
        let findings = check_file(Path::new("crates/pim/src/host.rs"), src);
        let w001: Vec<_> = findings.iter().filter(|f| f.rule == "W001").collect();
        assert_eq!(w001.len(), 2, "{findings:?}");
    }

    #[test]
    fn w001_skips_bins_tests_and_out_of_scope_paths() {
        let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }";
        assert!(rules_hit("crates/bench/src/bin/sweep.rs", src).is_empty());
        assert!(rules_hit("crates/analysis/src/main.rs", src).is_empty());
        assert!(rules_hit("tests/failure_paths.rs", src).is_empty());
        assert!(rules_hit("examples/custom_kernel.rs", src).is_empty());
        assert_eq!(rules_hit("crates/rl/src/qtable.rs", src), ["W001"]);
    }

    #[test]
    fn k003_flags_uncharged_intrinsic() {
        let kernel_src = r#"
            impl<'a> DpuContext<'a> {
                pub fn charge_alu(&mut self, n: u64) { self.counter.charge(OpClass::Alu, n); }
                pub fn add32(&mut self, a: u32, b: u32) -> u32 {
                    self.charge_alu(1);
                    a.wrapping_add(b)
                }
                pub fn double(&mut self, a: u32) -> u32 { self.add32(a, a) }
                pub fn sneaky(&mut self, a: u32) -> u32 { a ^ 1 }
                pub fn tasklet_id(&self) -> usize { self.tasklet_id }
                fn internal(&mut self) {}
            }
        "#;
        let config_src = r#"
            pub struct OpCosts { pub mul32_slots: u64, pub unused_slots: u64 }
        "#;
        let findings = check_charge_coverage(
            Path::new("crates/pim/src/kernel.rs"),
            kernel_src,
            Path::new("crates/pim/src/config.rs"),
            config_src,
        );
        let msgs: Vec<_> = findings.iter().map(|f| f.message.as_str()).collect();
        // `sneaky` is uncharged; `double` delegates to add32 (charged);
        // accessors and private helpers are exempt. `unused_slots` has no
        // consumer; `mul32_slots` is absent from this synthetic kernel too.
        assert!(msgs.iter().any(|m| m.contains("sneaky")), "{msgs:?}");
        assert!(!msgs.iter().any(|m| m.contains("double")), "{msgs:?}");
        assert!(!msgs.iter().any(|m| m.contains("tasklet_id")), "{msgs:?}");
        assert!(!msgs.iter().any(|m| m.contains("internal")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("unused_slots")), "{msgs:?}");
    }

    #[test]
    fn k003_transitive_delegation_wave() {
        // c -> b -> a -> charge: requires more than one fixed-point pass.
        let kernel_src = r#"
            impl<'a> DpuContext<'a> {
                pub fn a(&mut self) { self.counter.charge(OpClass::Alu, 1); }
                pub fn b(&mut self) { self.a(); }
                pub fn c(&mut self) { self.b(); }
            }
        "#;
        let findings = check_charge_coverage(
            Path::new("k.rs"),
            kernel_src,
            Path::new("c.rs"),
            "pub struct OpCosts {}",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn rule_registry_is_complete() {
        let ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            ["K001", "K002", "K003", "K004", "K005", "K006", "K007", "K008", "W001"]
        );
        for r in RULES {
            assert!(!r.explain.is_empty() && !r.fix_hint.is_empty());
        }
        assert!(rule_info("k002").is_some());
        assert!(rule_info("K999").is_none());
    }
}
