#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `swiftrl-analysis` — a rustc-tidy-style static lint pass for the SwiftRL
//! workspace, enforcing the *charged-intrinsics contract* that the whole
//! cycle-accounting argument of the paper rests on.
//!
//! The analyzer is deliberately dependency-free (DESIGN.md §5): it lexes
//! Rust source with a hand-rolled [`scanner`] and applies token-level
//! [`rules`]. It is not a Rust parser — the rules are designed so the
//! approximation errs on the side of *no false positives on this codebase*,
//! and the `tests/analysis_clean.rs` integration test keeps it that way.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p swiftrl-analysis              # lint the workspace
//! cargo run -p swiftrl-analysis -- --explain K001
//! cargo run -p swiftrl-analysis -- --fix-hints
//! ```
//!
//! Rules: **K001** no host floats in kernel code, **K002** no
//! nondeterminism/free work in kernel bodies, **K003** every `DpuContext`
//! intrinsic charges a cost (and every `OpCosts` field has a consumer),
//! **K004** MRAM layout constants are 8-byte aligned, **K005** no host
//! threading in kernel code (parallelism belongs to the execution
//! engine), **K006** no fault-plan access in kernel code (faults are a
//! platform behaviour; kernels stay oblivious), **K007** no direct
//! `softfloat`/`emul`/`fastpath` calls in kernel code (arithmetic goes
//! through the charged, tier-dispatching `DpuContext` intrinsics),
//! **K008** no telemetry emission in kernel code (the event stream is a
//! host-side observer recorded after the engine's ordered merge),
//! **W001** no `unwrap`/`expect` in library code.

pub mod rules;
pub mod scanner;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{check_charge_coverage, check_file, rule_info, Finding, RuleInfo, RULES};

/// Result of analyzing a workspace tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

/// Directories never descended into when collecting sources.
const SKIP_DIRS: &[&str] = &["target", ".git", "related"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over all `.rs` files under `root` (the workspace root).
///
/// Single-file rules run on each source; the cross-file K003 charge-coverage
/// check runs on `crates/pim/src/kernel.rs` against
/// `crates/pim/src/config.rs` when both exist.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut analysis = Analysis::default();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        analysis.findings.extend(rules::check_file(rel, &src));
        analysis.files_scanned += 1;
    }

    let kernel_path = root.join("crates/pim/src/kernel.rs");
    let config_path = root.join("crates/pim/src/config.rs");
    if kernel_path.is_file() && config_path.is_file() {
        let kernel_src = fs::read_to_string(&kernel_path)?;
        let config_src = fs::read_to_string(&config_path)?;
        analysis.findings.extend(rules::check_charge_coverage(
            Path::new("crates/pim/src/kernel.rs"),
            &kernel_src,
            Path::new("crates/pim/src/config.rs"),
            &config_src,
        ));
    }

    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(analysis)
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`. Used by the CLI to locate the repo root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        // The analysis crate lives two levels below the workspace root.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/analysis").is_dir());
    }

    #[test]
    fn workspace_scan_covers_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let analysis = analyze_workspace(&root).expect("scan");
        assert!(analysis.files_scanned > 10);
    }
}
