#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `swiftrl-analysis` — a rustc-tidy-style static analyzer for the SwiftRL
//! workspace, enforcing the *charged-intrinsics contract* that the whole
//! cycle-accounting argument of the paper rests on.
//!
//! The analyzer is dependency-free beyond the workspace's own zero-dep
//! `swiftrl-telemetry` JSON layer (DESIGN.md §5): it lexes Rust source with
//! a hand-rolled [`scanner`], recovers items and call sites with a
//! lightweight [`parse`] pass, builds a workspace [`callgraph`], and applies
//! [`rules`] over the set of functions transitively reachable from kernel
//! entry points. It is not a full Rust parser — resolution is deliberately
//! conservative, and the `tests/analysis_clean.rs` integration test keeps
//! the approximation free of false positives on this codebase.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p swiftrl-analysis                    # lint, baseline-gated
//! cargo run -p swiftrl-analysis -- --explain K001  # rule docs + example
//! cargo run -p swiftrl-analysis -- --json findings.json --sarif out.sarif
//! cargo run -p swiftrl-analysis -- --write-baseline
//! ```
//!
//! Rules: **K001** no host floats in kernel-reachable code, **K002** no
//! nondeterminism/free work, **K003** every `DpuContext` intrinsic charges
//! a cost (and every `OpCosts` field has a consumer), **K004** layout
//! constants are 8-byte aligned, **K005** no host threading, **K006** no
//! fault-plan access, **K007** no direct `softfloat`/`emul`/`fastpath`
//! calls, **K008** no telemetry emission (K005–K008 all over the
//! kernel-reachable set), **K009/K010** declared WRAM/MRAM regions fit
//! their capacities and never overlap, **K011** no batched-tier access
//! (`batch::`, `BatchContext`, `run_batched`) from kernel-reachable code —
//! the fused sweep is host-side and kernels may only advertise it via
//! `Kernel::batch`, **D001–D003** host-side determinism
//! (no hashed iteration, ambient time/entropy, or `std::env` in scoped
//! library code), **W001** no `unwrap`/`expect` in library code.

pub mod budget;
pub mod callgraph;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scanner;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use parse::{SourceFile, Workspace};

pub use report::{baseline_path, findings_json, sarif_json, severity_of, Baseline, Severity};
pub use rules::{check_charge_coverage, check_file, rule_info, Finding, RuleInfo, RULES};

/// Result of analyzing a workspace tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

/// Directories never descended into when collecting sources.
const SKIP_DIRS: &[&str] = &["target", ".git", "related"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over all `.rs` files under `root` (the workspace root).
///
/// The sources are parsed into a single [`Workspace`] so that kernel rules
/// see the cross-file call graph and budget rules see workspace-global
/// constants; K003 runs when `crates/pim/src/{kernel,config}.rs` are both
/// present.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        sources.push(SourceFile { rel, src });
    }
    let ws = Workspace::build(&sources);
    Ok(Analysis {
        files_scanned: sources.len(),
        findings: rules::check_workspace(&ws),
    })
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`. Used by the CLI to locate the repo root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_walks_upward() {
        // The analysis crate lives two levels below the workspace root.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/analysis").is_dir());
    }

    #[test]
    fn workspace_scan_covers_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let analysis = analyze_workspace(&root).expect("scan");
        assert!(analysis.files_scanned > 10);
    }
}
