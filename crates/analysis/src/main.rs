//! CLI for the SwiftRL kernel-discipline analyzer.
//!
//! ```text
//! cargo run -p swiftrl-analysis                 # lint the workspace, baseline-gated
//! cargo run -p swiftrl-analysis -- --list       # list all rules
//! cargo run -p swiftrl-analysis -- --explain K003
//! cargo run -p swiftrl-analysis -- --fix-hints  # findings with fix suggestions
//! cargo run -p swiftrl-analysis -- --root PATH  # lint a different tree
//! cargo run -p swiftrl-analysis -- --json [PATH] --sarif PATH
//! cargo run -p swiftrl-analysis -- --write-baseline
//! ```
//!
//! Exit codes: **0** clean (no findings, or every finding covered by the
//! baseline), **1** new findings, **2** usage or I/O error.
//!
//! A checked-in `analysis-baseline.json` at the workspace root is applied
//! automatically (opt out with `--no-baseline`, point elsewhere with
//! `--baseline PATH`); CI therefore fails only on *new* findings.

use std::path::PathBuf;
use std::process::ExitCode;

use swiftrl_analysis::{
    analyze_workspace, baseline_path, find_workspace_root, findings_json, rule_info, sarif_json,
    severity_of, Baseline, RULES,
};

fn usage() -> &'static str {
    "usage: swiftrl-analysis [--root PATH] [--fix-hints] [--list] [--explain RULE]\n\
     \x20                       [--json [PATH]] [--sarif PATH]\n\
     \x20                       [--baseline PATH] [--no-baseline] [--write-baseline]"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_hints = false;
    let mut json_out: Option<Option<PathBuf>> = None; // None=off, Some(None)=stdout
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline_file: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("--explain needs a rule ID (e.g. K001)\n{}", usage());
                    return ExitCode::from(2);
                };
                let Some(info) = rule_info(&id) else {
                    eprintln!("unknown rule `{id}`; known rules:");
                    for r in RULES {
                        eprintln!("  {} — {}", r.id, r.title);
                    }
                    return ExitCode::from(2);
                };
                println!(
                    "{} — {} [{}]\nscope: {}\n\n{}\n\nexample:\n{}\n\nfix: {}",
                    info.id,
                    info.title,
                    info.severity.as_str(),
                    info.scope,
                    info.explain,
                    info.example,
                    info.fix_hint
                );
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for r in RULES {
                    println!("{} [{}] — {}", r.id, r.severity.as_str(), r.title);
                }
                return ExitCode::SUCCESS;
            }
            "--fix-hints" => fix_hints = true,
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(p));
            }
            "--json" => {
                // Optional path operand: `--json out.json` writes a file,
                // bare `--json` prints the document to stdout.
                let path = args
                    .peek()
                    .filter(|a| !a.starts_with("--"))
                    .map(PathBuf::from);
                if path.is_some() {
                    args.next();
                }
                json_out = Some(path);
            }
            "--sarif" => {
                let Some(p) = args.next() else {
                    eprintln!("--sarif needs a path\n{}", usage());
                    return ExitCode::from(2);
                };
                sarif_out = Some(PathBuf::from(p));
            }
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("--baseline needs a path\n{}", usage());
                    return ExitCode::from(2);
                };
                baseline_file = Some(PathBuf::from(p));
            }
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}; pass --root", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    let default_baseline = baseline_path(&root);
    let baseline_file = baseline_file.or_else(|| default_baseline.is_file().then_some(default_baseline));

    if write_baseline {
        let target = baseline_file.unwrap_or_else(|| baseline_path(&root));
        let baseline = Baseline::from_findings(&analysis.findings);
        if let Err(e) = std::fs::write(&target, baseline.render()) {
            eprintln!("cannot write baseline {}: {e}", target.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "swiftrl-analysis: wrote {} baseline entr(ies) to {}",
            analysis.findings.len(),
            target.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if no_baseline {
        Baseline::default()
    } else if let Some(path) = &baseline_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("invalid baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let (new_findings, baselined) = baseline.partition(&analysis.findings);

    if let Some(path) = &sarif_out {
        let doc = sarif_json(&new_findings);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            eprintln!("cannot write SARIF {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dest) = &json_out {
        let doc = findings_json(analysis.files_scanned, &new_findings, baselined);
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(path, doc.render_pretty()) {
                    eprintln!("cannot write JSON {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => println!("{}", doc.render_pretty()),
        }
    }

    // Human-readable findings go to stdout unless it is carrying the JSON
    // document.
    if !matches!(json_out, Some(None)) {
        for f in &new_findings {
            println!("{} [{}]", f, severity_of(f.rule).as_str());
            if fix_hints {
                if let Some(info) = rule_info(f.rule) {
                    println!("    hint: {}", info.fix_hint);
                }
            }
        }
    }
    eprintln!(
        "swiftrl-analysis: {} files scanned, {} new finding(s), {} baselined",
        analysis.files_scanned,
        new_findings.len(),
        baselined
    );
    if new_findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
