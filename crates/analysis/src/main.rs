//! CLI for the SwiftRL kernel-discipline analyzer.
//!
//! ```text
//! cargo run -p swiftrl-analysis                 # lint the workspace, exit 1 on findings
//! cargo run -p swiftrl-analysis -- --list       # list all rules
//! cargo run -p swiftrl-analysis -- --explain K003
//! cargo run -p swiftrl-analysis -- --fix-hints  # findings with fix suggestions
//! cargo run -p swiftrl-analysis -- --root PATH  # lint a different tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use swiftrl_analysis::{analyze_workspace, find_workspace_root, rule_info, RULES};

fn usage() -> &'static str {
    "usage: swiftrl-analysis [--root PATH] [--fix-hints] [--list] [--explain RULE]"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_hints = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("--explain needs a rule ID (e.g. K001)\n{}", usage());
                    return ExitCode::from(2);
                };
                let Some(info) = rule_info(&id) else {
                    eprintln!("unknown rule `{id}`; known rules:");
                    for r in RULES {
                        eprintln!("  {} — {}", r.id, r.title);
                    }
                    return ExitCode::from(2);
                };
                println!("{} — {}\n\n{}\n\nfix: {}", info.id, info.title, info.explain, info.fix_hint);
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for r in RULES {
                    println!("{} — {}", r.id, r.title);
                }
                return ExitCode::SUCCESS;
            }
            "--fix-hints" => fix_hints = true,
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no workspace root found above {}; pass --root", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &analysis.findings {
        println!("{f}");
        if fix_hints {
            if let Some(info) = rule_info(f.rule) {
                println!("    hint: {}", info.fix_hint);
            }
        }
    }
    eprintln!(
        "swiftrl-analysis: {} files scanned, {} finding(s)",
        analysis.files_scanned,
        analysis.findings.len()
    );
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
