//! A lightweight item parser on top of [`crate::scanner`].
//!
//! This is deliberately *not* a Rust parser: it recognizes exactly the item
//! shapes the workspace analyzer needs — `impl` / `trait` blocks, `fn`
//! definitions with their parameter types and bodies, `struct` field types,
//! and `#[cfg(test)]` gating — and extracts, per function, the outgoing
//! call sites with a best-effort receiver type. Everything borrows from the
//! source buffer; the [`crate::callgraph`] module resolves the calls into a
//! workspace-wide graph.
//!
//! The approximations are chosen so resolution *under*-approximates
//! reachability rather than over-approximating it (DESIGN.md §12): an edge
//! is only added when the receiver type is known, or when a method name is
//! unique in the workspace and not a common `std` name. The
//! `tests/analysis_clean.rs` gate plus per-rule fixtures keep both error
//! directions visible.

use std::path::Path;

use crate::scanner::{matching_brace, matching_delim, tokenize, Token, TokenKind};

/// Identifiers that look like calls (`if (`, `match (`, ...) but are not.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "loop", "for", "return", "as", "in", "let", "mut", "ref", "move",
    "break", "continue", "else", "unsafe", "dyn", "impl", "fn", "pub", "use", "where", "struct",
    "enum", "const", "static", "type", "trait", "await", "box",
];

/// Keywords and modifiers never taken as a type identifier.
const TYPE_KEYWORDS: &[&str] = &["mut", "dyn", "impl", "ref", "const", "self", "as"];

/// How a call site names its receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv<'s> {
    /// Bare `name(...)` — a free function (or tuple-struct constructor).
    Free,
    /// The receiver type is known: `Type::name(...)`, `self.name(...)`
    /// (enclosing impl type), a single-level `self.field.name(...)` with a
    /// known field type, or `local.name(...)` with an inferred local type.
    Typed(&'s str),
    /// A method call whose receiver could not be typed.
    Unknown,
}

/// One outgoing call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call<'s> {
    /// Callee name (method or free-function identifier).
    pub name: &'s str,
    /// Best-effort receiver classification.
    pub recv: Recv<'s>,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One `fn` definition (free function, inherent/trait-impl method, or
/// trait-declaration method).
#[derive(Debug, Clone)]
pub struct FnDef<'s> {
    /// Function name.
    pub name: &'s str,
    /// 1-based line of the name token.
    pub line: u32,
    /// Owner type: the `impl` self-type, or the trait name for methods
    /// declared inside a `trait` block. `None` for free functions.
    pub owner: Option<&'s str>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<&'s str>,
    /// Token range `[params_open, body_start)` covering the signature from
    /// the parameter list through the return type.
    pub sig: (usize, usize),
    /// Brace-inclusive token range of the body, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// True if the definition sits under `#[cfg(test)]`.
    pub is_test: bool,
    /// True if some parameter's type mentions `DpuContext`.
    pub takes_ctx: bool,
    /// Outgoing call sites extracted from the body.
    pub calls: Vec<Call<'s>>,
}

impl FnDef<'_> {
    /// `Owner::name` for methods, plain `name` for free functions.
    pub fn qualified(&self) -> String {
        match self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.to_string(),
        }
    }
}

/// One `struct` definition with its named fields' types.
#[derive(Debug, Clone)]
pub struct StructDef<'s> {
    /// Struct name.
    pub name: &'s str,
    /// `(field, last depth-0 type identifier)` pairs.
    pub fields: Vec<(&'s str, &'s str)>,
}

/// Parsed view of one source file.
pub struct FileIndex<'s> {
    /// Repo-relative path.
    pub rel: &'s Path,
    /// The file's token stream (all item ranges index into this).
    pub tokens: Vec<Token<'s>>,
    /// Every function definition found.
    pub fns: Vec<FnDef<'s>>,
    /// Every struct definition found.
    pub structs: Vec<StructDef<'s>>,
    /// Per-token `#[cfg(test)]` mask.
    pub test_mask: Vec<bool>,
}

/// A source file handed to the parser (owned by the caller).
pub struct SourceFile {
    /// Repo-relative path.
    pub rel: std::path::PathBuf,
    /// Full source text.
    pub src: String,
}

/// Parsed view of the whole workspace.
pub struct Workspace<'s> {
    /// One index per parsed file, in input order.
    pub files: Vec<FileIndex<'s>>,
}

impl<'s> Workspace<'s> {
    /// Parses every source file into a workspace index.
    pub fn build(sources: &'s [SourceFile]) -> Self {
        Workspace {
            files: sources
                .iter()
                .map(|f| parse_file(&f.rel, &f.src))
                .collect(),
        }
    }
}

/// Computes which token indexes sit inside `#[cfg(test)]`-gated items.
/// (`cfg(not(test))` gates production code and is never masked.)
pub fn cfg_test_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 3 < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
        {
            let close_paren = matching_delim(tokens, i + 3, '(', ')');
            let attr = &tokens[i + 3..close_paren.min(tokens.len())];
            let gated_on_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            let attr_end = close_paren + 1; // the `]`
            if gated_on_test && attr_end < tokens.len() {
                // Skip the gated item: to the first `{` (then its match) or
                // a `;`, whichever comes first.
                let mut j = attr_end + 1;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                let item_end = if j < tokens.len() && tokens[j].is_punct('{') {
                    matching_brace(tokens, j)
                } else {
                    j
                };
                for m in mask
                    .iter_mut()
                    .take(item_end.saturating_add(1).min(tokens.len()))
                    .skip(i)
                {
                    *m = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// An `impl`/`trait` block: brace range plus the owner / trait names.
struct OwnerBlock<'s> {
    open: usize,
    close: usize,
    owner: Option<&'s str>,
    trait_name: Option<&'s str>,
}

/// True for the `>` of a `->` arrow (tokens are single punctuation chars).
fn is_arrow_close(tokens: &[Token<'_>], i: usize) -> bool {
    i > 0 && tokens[i].is_punct('>') && tokens[i - 1].is_punct('-')
}

/// Collects `impl`/`trait` block headers. For `impl Trait for Type` the
/// owner is the first depth-0 identifier after `for`; for inherent impls it
/// is the first depth-0 identifier after `impl`; for `trait Name` blocks
/// the owner is the trait name itself (so default-method bodies resolve).
fn owner_blocks<'s>(tokens: &[Token<'s>]) -> Vec<OwnerBlock<'s>> {
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_impl = tokens[i].is_ident("impl");
        let is_trait = tokens[i].is_ident("trait");
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        // `impl Trait for Type {` headers never contain `{`/`;` except at
        // the end; scan to it, tracking angle depth for generics.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut for_at: Option<usize> = None;
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            if tokens[j].is_punct('<') {
                angle += 1;
            } else if tokens[j].is_punct('>') && !is_arrow_close(tokens, j) {
                angle -= 1;
            } else if angle == 0 && tokens[j].is_ident("for") {
                for_at = Some(j);
            }
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('{') {
            i = j + 1;
            continue;
        }
        let close = matching_brace(tokens, j);
        let first_type_ident = |range: std::ops::Range<usize>| -> Option<&'s str> {
            let mut depth = 0i32;
            for k in range {
                if tokens[k].is_punct('<') {
                    depth += 1;
                } else if tokens[k].is_punct('>') && !is_arrow_close(tokens, k) {
                    depth -= 1;
                } else if depth == 0
                    && tokens[k].kind == TokenKind::Ident
                    && !TYPE_KEYWORDS.contains(&tokens[k].text)
                    && !tokens[k].is_ident("for")
                    && !tokens[k].is_ident("where")
                {
                    return Some(tokens[k].text);
                }
            }
            None
        };
        let (owner, trait_name) = if is_trait {
            (first_type_ident(i + 1..j), None)
        } else {
            match for_at {
                Some(f) => (first_type_ident(f + 1..j), first_type_ident(i + 1..f)),
                None => (first_type_ident(i + 1..j), None),
            }
        };
        blocks.push(OwnerBlock { open: j, close, owner, trait_name });
        // Descend into the block body (nested impls are rare but legal), so
        // do NOT jump past `close` here.
        i = j + 1;
    }
    blocks
}

/// The last depth-0 identifier of a type token range, skipping modifiers —
/// `&mut DpuContext<'_>` → `DpuContext`, `&dyn rand::RngCore` → `RngCore`,
/// `Vec<u8>` → `Vec`.
fn last_type_ident<'s>(tokens: &[Token<'s>], range: std::ops::Range<usize>) -> Option<&'s str> {
    let mut depth = 0i32;
    let mut last = None;
    for k in range {
        if tokens[k].is_punct('<') {
            depth += 1;
        } else if tokens[k].is_punct('>') && !is_arrow_close(tokens, k) {
            depth -= 1;
        } else if depth == 0
            && tokens[k].kind == TokenKind::Ident
            && !TYPE_KEYWORDS.contains(&tokens[k].text)
        {
            last = Some(tokens[k].text);
        }
    }
    last
}

/// Splits a parameter list `[open+1, close)` on top-level commas and
/// returns `(pattern name, type identifier)` pairs.
fn param_types<'s>(
    tokens: &[Token<'s>],
    open: usize,
    close: usize,
) -> Vec<(Option<&'s str>, Option<&'s str>)> {
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i32;
    let mut k = start;
    while k <= close && k < tokens.len() {
        let at_end = k == close;
        let t = &tokens[k];
        if !at_end {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')')
                || t.is_punct(']')
                || (t.is_punct('>') && !is_arrow_close(tokens, k))
            {
                depth -= 1;
            }
        }
        if (at_end || (t.is_punct(',') && depth == 0)) && k > start {
            let colon = (start..k).find(|&p| {
                tokens[p].is_punct(':') && !tokens.get(p + 1).is_some_and(|n| n.is_punct(':'))
            });
            match colon {
                Some(c) => {
                    let name = (start..c)
                        .filter(|&p| tokens[p].kind == TokenKind::Ident)
                        .map(|p| tokens[p].text)
                        .find(|t| !TYPE_KEYWORDS.contains(t));
                    out.push((name, last_type_ident(tokens, c + 1..k)));
                }
                None => {
                    // `&self`, `&mut self`, `self`
                    if (start..k).any(|p| tokens[p].is_ident("self")) {
                        out.push((Some("self"), None));
                    }
                }
            }
            start = k + 1;
        }
        if at_end {
            break;
        }
        k += 1;
    }
    out
}

/// Infers local-variable types from parameters and `let` bindings:
/// `let x: Type = ...`, `let x = Type::ctor(...)` (uppercase-start type).
fn local_types<'s>(
    tokens: &[Token<'s>],
    body: (usize, usize),
    params: &[(Option<&'s str>, Option<&'s str>)],
) -> std::collections::HashMap<&'s str, &'s str> {
    let mut map = std::collections::HashMap::new();
    for (name, ty) in params {
        if let (Some(n), Some(t)) = (name, ty) {
            map.insert(*n, *t);
        }
    }
    let (open, close) = body;
    let mut k = open + 1;
    while k + 2 < close {
        if !tokens[k].is_ident("let") {
            k += 1;
            continue;
        }
        let mut n = k + 1;
        while n < close && (tokens[n].is_ident("mut") || tokens[n].is_ident("ref")) {
            n += 1;
        }
        if tokens[n].kind != TokenKind::Ident {
            k += 1;
            continue;
        }
        let var = tokens[n].text;
        if tokens.get(n + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(n + 2).is_some_and(|t| t.is_punct(':'))
        {
            // `let x: Type = ...` — type runs to the `=` or `;`.
            let mut e = n + 2;
            while e < close && !tokens[e].is_punct('=') && !tokens[e].is_punct(';') {
                e += 1;
            }
            if let Some(ty) = last_type_ident(tokens, n + 2..e) {
                map.insert(var, ty);
            }
            k = e;
            continue;
        }
        if tokens.get(n + 1).is_some_and(|t| t.is_punct('=')) {
            // `let x = path::Type::ctor(...)` — take the path segment just
            // before the final `::method`, when it starts uppercase.
            let mut segs: Vec<&str> = Vec::new();
            let mut p = n + 2;
            while p < close && tokens[p].kind == TokenKind::Ident {
                segs.push(tokens[p].text);
                if tokens.get(p + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(p + 2).is_some_and(|t| t.is_punct(':'))
                {
                    p += 3;
                } else {
                    break;
                }
            }
            if segs.len() >= 2 && tokens.get(p + 1).is_some_and(|t| t.is_punct('(')) {
                let ty = segs[segs.len() - 2];
                if ty.starts_with(char::is_uppercase) {
                    map.insert(var, ty);
                }
            }
            k = p + 1;
            continue;
        }
        k += 1;
    }
    map
}

/// Extracts the outgoing call sites of one function body.
fn extract_calls<'s>(
    tokens: &[Token<'s>],
    body: (usize, usize),
    owner: Option<&'s str>,
    locals: &std::collections::HashMap<&'s str, &'s str>,
    structs: &[StructDef<'s>],
) -> Vec<Call<'s>> {
    let mut calls = Vec::new();
    let (open, close) = body;
    let field_type = |st: Option<&'s str>, field: &str| -> Option<&'s str> {
        let st = st?;
        structs
            .iter()
            .find(|s| s.name == st)?
            .fields
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, t)| *t)
    };
    for k in open + 1..close {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident
            || !tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
            || CALL_KEYWORDS.contains(&t.text)
        {
            continue;
        }
        let name = t.text;
        let line = t.line;
        let prev = &tokens[k - 1];
        let recv = if prev.is_punct('.') {
            // Method call: classify the receiver expression.
            match tokens.get(k - 2) {
                Some(b) if b.is_ident("self") => match owner {
                    Some(o) => Recv::Typed(o),
                    None => Recv::Unknown,
                },
                Some(b) if b.kind == TokenKind::Ident => {
                    let before = tokens.get(k.wrapping_sub(3));
                    if before.is_some_and(|x| x.is_punct('.')) {
                        // `a.b.method(` — resolve `self.field.method(` via
                        // the owner struct's field types; deeper chains stay
                        // unresolved.
                        if tokens.get(k.wrapping_sub(4)).is_some_and(|x| x.is_ident("self")) {
                            match field_type(owner, b.text) {
                                Some(ty) => Recv::Typed(ty),
                                None => Recv::Unknown,
                            }
                        } else {
                            Recv::Unknown
                        }
                    } else {
                        match locals.get(b.text) {
                            Some(ty) => Recv::Typed(ty),
                            None => Recv::Unknown,
                        }
                    }
                }
                _ => Recv::Unknown,
            }
        } else if prev.is_punct(':') && tokens.get(k.wrapping_sub(2)).is_some_and(|b| b.is_punct(':'))
        {
            // `Seg::name(` — a type receiver when the segment starts
            // uppercase; a module path otherwise (treated as a free call).
            match tokens.get(k.wrapping_sub(3)) {
                Some(seg) if seg.kind == TokenKind::Ident => {
                    if seg.is_ident("Self") {
                        match owner {
                            Some(o) => Recv::Typed(o),
                            None => Recv::Unknown,
                        }
                    } else if seg.text.starts_with(char::is_uppercase) {
                        Recv::Typed(seg.text)
                    } else {
                        Recv::Free
                    }
                }
                _ => Recv::Unknown,
            }
        } else if prev.is_ident("fn") {
            continue; // a definition, not a call
        } else {
            Recv::Free
        };
        calls.push(Call { name, recv, line });
    }
    calls
}

/// Collects `struct Name { field: Type, ... }` definitions.
fn struct_defs<'s>(tokens: &[Token<'s>]) -> Vec<StructDef<'s>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !tokens[i].is_ident("struct") || tokens[i + 1].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text;
        // Scan the header to `{` (named fields), `(` (tuple struct — no
        // named fields to record), or `;` (unit struct).
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !is_arrow_close(tokens, j) {
                angle -= 1;
            } else if angle == 0 && (t.is_punct('{') || t.is_punct('(') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('{') {
            i = j + 1;
            continue;
        }
        let close = matching_brace(tokens, j);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k + 1 < close {
            if tokens[k].kind == TokenKind::Ident
                && !tokens[k].is_ident("pub")
                && tokens[k + 1].is_punct(':')
                && !tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                let fname = tokens[k].text;
                // The type runs to the comma (or close) at depth 0.
                let mut depth = 0i32;
                let mut e = k + 2;
                while e < close {
                    let t = &tokens[e];
                    if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')')
                        || t.is_punct(']')
                        || (t.is_punct('>') && !is_arrow_close(tokens, e))
                    {
                        depth -= 1;
                    } else if t.is_punct(',') && depth <= 0 {
                        break;
                    }
                    e += 1;
                }
                if let Some(ty) = last_type_ident(tokens, k + 2..e) {
                    fields.push((fname, ty));
                }
                k = e + 1;
                continue;
            }
            k += 1;
        }
        out.push(StructDef { name, fields });
        i = close + 1;
    }
    out
}

/// Parses one file into its index.
pub fn parse_file<'s>(rel: &'s Path, src: &'s str) -> FileIndex<'s> {
    let tokens = tokenize(src);
    let test_mask = cfg_test_mask(&tokens);
    let structs = struct_defs(&tokens);
    let blocks = owner_blocks(&tokens);

    let enclosing = |idx: usize| -> Option<&OwnerBlock<'s>> {
        blocks
            .iter()
            .filter(|b| b.open < idx && idx <= b.close)
            .min_by_key(|b| b.close - b.open)
    };

    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !tokens[i].is_ident("fn") || tokens[i + 1].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text;
        let line = tokens[i + 1].line;
        // Find the parameter list: the first `(` at angle-depth 0 after the
        // name (generic bounds like `F: Fn(u32)` sit at depth > 0).
        let mut p = i + 2;
        let mut angle = 0i32;
        while p < tokens.len() {
            let t = &tokens[p];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !is_arrow_close(&tokens, p) {
                angle -= 1;
            } else if (t.is_punct('(') && angle <= 0) || t.is_punct('{') || t.is_punct(';') {
                break;
            }
            p += 1;
        }
        if p >= tokens.len() || !tokens[p].is_punct('(') {
            i = p;
            continue;
        }
        let params_end = matching_delim(&tokens, p, '(', ')');
        // Signature runs to the body `{` or a `;` (trait method decl).
        let mut b = params_end + 1;
        while b < tokens.len() && !tokens[b].is_punct('{') && !tokens[b].is_punct(';') {
            b += 1;
        }
        let body = (b < tokens.len() && tokens[b].is_punct('{'))
            .then(|| (b, matching_brace(&tokens, b)));
        let block = enclosing(i);
        let owner = block.and_then(|bl| bl.owner);
        let trait_name = block.and_then(|bl| bl.trait_name);
        let params = param_types(&tokens, p, params_end.min(tokens.len()));
        let takes_ctx = params.iter().any(|(_, t)| *t == Some("DpuContext"));
        let calls = match body {
            Some(range) => {
                let locals = local_types(&tokens, range, &params);
                extract_calls(&tokens, range, owner, &locals, &structs)
            }
            None => Vec::new(),
        };
        fns.push(FnDef {
            name,
            line,
            owner,
            trait_name,
            sig: (p, body.map_or(b, |(open, _)| open)),
            body,
            is_test: test_mask.get(i).copied().unwrap_or(false),
            takes_ctx,
            calls,
        });
        i = body.map_or(b + 1, |(_, end)| end + 1);
    }

    FileIndex { rel, tokens, fns, structs, test_mask }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileIndex<'_> {
        parse_file(Path::new("crates/core/src/kernels.rs"), src)
    }

    #[test]
    fn impl_and_trait_owners_are_recorded() {
        let src = r#"
            trait Kernel { fn tasklets(&self) -> usize { 1 } }
            impl Kernel for SwiftRlKernel {
                fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> { Ok(()) }
            }
            impl<'a> DpuContext<'a> { pub fn fadd(&mut self, a: F32, b: F32) -> F32 { a } }
            fn free_helper(v: u32) -> u32 { v }
        "#;
        let idx = parse(src);
        let by_name = |n: &str| idx.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("tasklets").owner, Some("Kernel"));
        let run = by_name("run");
        assert_eq!(run.owner, Some("SwiftRlKernel"));
        assert_eq!(run.trait_name, Some("Kernel"));
        assert!(run.takes_ctx);
        assert_eq!(by_name("fadd").owner, Some("DpuContext"));
        assert_eq!(by_name("free_helper").owner, None);
        assert!(!by_name("free_helper").takes_ctx);
    }

    #[test]
    fn calls_resolve_receivers() {
        let src = r#"
            struct Body { map: WramMap }
            impl Body {
                fn go(&self, ctx: &mut DpuContext<'_>) {
                    self.step();
                    self.map.q_entry(1);
                    let w = WramMap::new();
                    w.lookup(2);
                    helper(3);
                    layout::seed(4);
                    ctx.charge_alu(1);
                    opaque().chain(5);
                }
            }
        "#;
        let idx = parse(src);
        let go = idx.fns.iter().find(|f| f.name == "go").unwrap();
        let call = |n: &str| go.calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(call("step").recv, Recv::Typed("Body"));
        assert_eq!(call("q_entry").recv, Recv::Typed("WramMap"));
        assert_eq!(call("new").recv, Recv::Typed("WramMap"));
        assert_eq!(call("lookup").recv, Recv::Typed("WramMap"));
        assert_eq!(call("helper").recv, Recv::Free);
        assert_eq!(call("seed").recv, Recv::Free);
        assert_eq!(call("charge_alu").recv, Recv::Typed("DpuContext"));
        assert_eq!(call("chain").recv, Recv::Unknown);
        assert_eq!(call("opaque").recv, Recv::Free);
    }

    #[test]
    fn cfg_test_functions_are_marked() {
        let src = r#"
            fn lib_fn() {}
            #[cfg(test)]
            mod tests { fn helper() {} }
        "#;
        let idx = parse(src);
        assert!(!idx.fns.iter().find(|f| f.name == "lib_fn").unwrap().is_test);
        assert!(idx.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
    }

    #[test]
    fn let_type_annotations_and_generics_are_tolerated() {
        let src = r#"
            fn f<F: Fn(u32) -> u32>(cb: F, hdr: &KernelHeader) -> Vec<u8> {
                let x: core::layout::KernelHeader = make();
                x.encode(0);
                let y = crate::layout::KernelHeader::from_bytes(buf);
                y.decode(1);
            }
        "#;
        let idx = parse(src);
        let f = idx.fns.iter().find(|f| f.name == "f").unwrap();
        let call = |n: &str| f.calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(call("encode").recv, Recv::Typed("KernelHeader"));
        assert_eq!(call("decode").recv, Recv::Typed("KernelHeader"));
        assert_eq!(call("from_bytes").recv, Recv::Typed("KernelHeader"));
    }
}
