//! A hand-rolled Rust token scanner.
//!
//! The analyzer deliberately avoids `syn`/`proc-macro2` (DESIGN.md §5: zero
//! new dependencies), so this module implements the small slice of Rust
//! lexing the lint rules need: comments (line, nested block), string / raw
//! string / byte-string / char literals, lifetimes, numeric literals with
//! float-vs-integer disambiguation (`1.max(2)` is an integer plus a method
//! call; `0.5f32` and `1.0e-3` are floats), identifiers (including raw
//! identifiers), and single-character punctuation. Literal *contents* are
//! never inspected by any rule, which is what lets the analysis crate seed
//! violations inside raw strings in its own tests without tripping itself.

/// The coarse classification a lint rule can dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `impl`, `f32`, `charge_alu`, ...).
    Ident,
    /// Integer literal, including hex/octal/binary and integer-suffixed forms.
    IntLit,
    /// Floating-point literal (`0.5`, `1.0e-3`, `1f32`, `65_536.0`).
    FloatLit,
    /// String, raw string, byte string, or character literal. Contents opaque.
    StrLit,
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// A single punctuation character (`{`, `}`, `(`, `.`, `&`, ...).
    Punct,
}

/// One lexed token, borrowing its text from the source buffer.
#[derive(Debug, Clone)]
pub struct Token<'s> {
    /// Classification used by the rules.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'s str,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl<'s> Token<'s> {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream, discarding comments and whitespace.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    Scanner {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Scanner<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'s>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'s> Scanner<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        // Byte-oriented scans (string escapes, `b'…'`, the bounded
        // char-literal lookahead) can leave `pos` past the end or in the
        // middle of a multi-byte code point on garbage input; clamp and
        // re-align forward so the slice below can never panic. Tokens
        // simply absorb any trailing continuation bytes.
        self.pos = self.pos.min(self.bytes.len());
        while self.pos < self.bytes.len() && (0x80..0xC0).contains(&self.bytes[self.pos]) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token<'s>> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'"' => self.scan_string(),
                b'\'' => self.scan_quote(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                _ if b.is_ascii_digit() => self.scan_number(),
                _ if is_ident_start(b) => self.scan_ident(),
                _ => self.scan_punct(),
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        // Rust block comments nest.
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br"…"`, `b'x'`.
    /// Returns true (and consumes) if the current position starts one of
    /// those forms; otherwise leaves the position for `scan_ident`.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let b = self.bytes[self.pos];
        let mut i = self.pos + 1;
        if b == b'b' {
            match self.bytes.get(i).copied() {
                Some(b'"') => {
                    self.pos = i;
                    self.scan_string_from(start, line);
                    return true;
                }
                Some(b'\'') => {
                    self.pos = i;
                    self.scan_byte_char(start, line);
                    return true;
                }
                Some(b'r') => i += 1,
                _ => {
                    self.scan_ident();
                    return true;
                }
            }
        }
        // At this point `i` indexes just past `r` (or `br`).
        let mut hashes = 0usize;
        while self.bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.bytes.get(i) == Some(&b'"') {
            self.pos = i + 1;
            self.scan_raw_string_tail(start, line, hashes);
            true
        } else if b == b'r' && hashes == 1 && self.bytes.get(i).copied().is_some_and(is_ident_start)
        {
            // Raw identifier `r#type`.
            self.pos = i;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            self.push(TokenKind::Ident, start, line);
            true
        } else {
            self.scan_ident();
            true
        }
    }

    fn scan_string(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.scan_string_from(start, line);
    }

    /// Scans a `"…"` body with escapes; `self.pos` is at the opening quote.
    fn scan_string_from(&mut self, start: usize, line: u32) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::StrLit, start, line);
    }

    fn scan_raw_string_tail(&mut self, start: usize, line: u32, hashes: usize) {
        // `self.pos` is just past the opening quote.
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    self.pos += 1;
                    if ok {
                        self.pos += hashes;
                        break;
                    }
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::StrLit, start, line);
    }

    fn scan_byte_char(&mut self, start: usize, line: u32) {
        // `self.pos` at the opening `'` of `b'x'` / `b'\n'`.
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 1;
        }
        self.pos += 1;
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        self.push(TokenKind::StrLit, start, line);
    }

    /// Disambiguates char literals from lifetimes at a `'`.
    fn scan_quote(&mut self) {
        let start = self.pos;
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.pos += 2;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                self.push(TokenKind::StrLit, start, line);
            }
            Some(c) if c >= 0x80 => {
                // Multi-byte char literal: find the closing quote nearby.
                self.pos += 1;
                let limit = (self.pos + 5).min(self.bytes.len());
                while self.pos < limit && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                self.push(TokenKind::StrLit, start, line);
            }
            Some(_) if self.peek(2) == Some(b'\'') => {
                // 'x'
                self.pos += 3;
                self.push(TokenKind::StrLit, start, line);
            }
            _ => {
                // Lifetime: `'` followed by identifier characters (or `'_`).
                self.pos += 1;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                self.push(TokenKind::Lifetime, start, line);
            }
        }
    }

    /// True if a number starting at the current position is a tuple-index
    /// field access (`x.0`, `pair.0.1`) rather than a numeric literal: the
    /// previous token is a single `.` (not part of `..`) whose left-hand
    /// side is an expression — an identifier, a closing delimiter, or a
    /// previous tuple index. Float literals after a range (`0.0..0.5`) keep
    /// the normal float path because their `.` is part of `..`.
    fn tuple_index_position(&self) -> bool {
        let n = self.out.len();
        if n < 2 || !self.out[n - 1].is_punct('.') {
            return false;
        }
        let base = &self.out[n - 2];
        !base.is_punct('.')
            && (matches!(base.kind, TokenKind::Ident | TokenKind::IntLit)
                || base.is_punct(')')
                || base.is_punct(']'))
    }

    fn scan_number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut kind = TokenKind::IntLit;
        if self.tuple_index_position() {
            // Tuple-index chains like `x.0.1` are two integer field
            // accesses; consuming `0.1` as a float here would make K001
            // flag tuple projections as host-float literals.
            while self.peek(0).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            self.push(kind, start, line);
            return;
        }
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'b') | Some(b'o'))
        {
            // Radix-prefixed literal: digits and suffix are all ident chars.
            self.pos += 2;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            self.push(kind, start, line);
            return;
        }
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                // `1.max(2)` / `0..n`: the dot is not part of the literal.
                Some(n) if is_ident_start(n) || n == b'.' => {}
                _ => {
                    // `65_536.0`, `1.` — a float.
                    kind = TokenKind::FloatLit;
                    self.pos += 1;
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                    {
                        self.pos += 1;
                    }
                }
            }
        }
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let (a, b2) = (self.peek(1), self.peek(2));
            let exp = match a {
                Some(d) if d.is_ascii_digit() => true,
                Some(b'+') | Some(b'-') => b2.is_some_and(|d| d.is_ascii_digit()),
                _ => false,
            };
            if exp {
                kind = TokenKind::FloatLit;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`u32`, `usize`, `f32`, ...).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == "f32" || suffix == "f64" {
            kind = TokenKind::FloatLit;
        }
        self.push(kind, start, line);
    }

    fn scan_ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn scan_punct(&mut self) {
        let start = self.pos;
        let line = self.line;
        let b = self.bytes[self.pos];
        if b < 0x80 {
            self.pos += 1;
        } else {
            // Stray non-ASCII character outside a literal: consume the whole
            // UTF-8 sequence so we never split a code point.
            self.pos += 1;
            while self.peek(0).is_some_and(|x| (0x80..0xC0).contains(&x)) {
                self.pos += 1;
            }
        }
        self.push(TokenKind::Punct, start, line);
    }
}

/// Returns the matching close-delimiter index for the opener at `open_idx`
/// (e.g. `'('`/`')'`), or `tokens.len()` if unbalanced.
pub fn matching_delim(tokens: &[Token<'_>], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Returns the index of the matching close brace for the open brace at
/// `open_idx` (which must be a `{` token), or `tokens.len()` if unbalanced.
pub fn matching_brace(tokens: &[Token<'_>], open_idx: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let toks = kinds("a // line\nb /* block /* nested */ still */ c");
        let idents: Vec<_> = toks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
    }

    #[test]
    fn float_vs_int_disambiguation() {
        let toks = kinds("1.max(2) 0..n 0.5 1f32 2u32 1.0e-3 65_536.0 0xFFu64");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::FloatLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(floats, ["0.5", "1f32", "1.0e-3", "65_536.0"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::IntLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, ["1", "2", "0", "2u32", "0xFFu64"]);
    }

    #[test]
    fn tuple_index_chains_are_integer_field_accesses() {
        // `x.0.1` is two integer projections, never a `0.1` float literal.
        let toks = kinds("let v = x.0.1;");
        let floats = toks.iter().filter(|(k, _)| *k == TokenKind::FloatLit).count();
        assert_eq!(floats, 0, "{toks:?}");
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::IntLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(ints, ["0", "1"]);
        // Same through closing delimiters and deeper chains.
        let toks = kinds("(f(a).0, arr[i].0.2, pair.1)");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::FloatLit), "{toks:?}");
        // Float literals keep their dot — including after a range, where
        // the preceding token is the second `.` of `..`.
        let toks = kinds("q.0 + 0.5 + range(0.0..0.5)");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::FloatLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(floats, ["0.5", "0.0", "0.5"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("<'a> 'x' '\\n' b'S' &'_ ()");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'_"]);
        let strs = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn raw_strings_hide_contents() {
        let toks = kinds(r####"let s = r#"0.5f32 .unwrap() vec![]"#; x"####);
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::FloatLit));
        assert!(!toks.iter().any(|(_, s)| s == "unwrap" || s == "vec"));
        assert!(toks.iter().any(|(_, s)| s == "x"));
    }

    #[test]
    fn multibyte_garbage_never_splits_code_points() {
        // Regression: escape skips (`\\` + multi-byte char), `b'…'`
        // scanning, and the bounded char-literal lookahead used to leave
        // the cursor mid-code-point and panic slicing the token text.
        for src in [
            "\"\\é",                    // escape consumes into a 2-byte char, then EOF
            "b'é",                      // byte-char scan across a multi-byte char
            "'ééééé",                   // bounded lookahead stops mid-sequence
            "\"\\",                     // escape at the last byte (pos past EOF)
            "é.é '\u{1F600}' r#\"\u{1F600}", // stray + emoji literal + unterminated raw
        ] {
            let toks = tokenize(src);
            let mut last = 1u32;
            for t in &toks {
                assert!(t.line >= last);
                last = t.line;
            }
        }
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds(r#"b"SFFH" br"raw" r#type bare"#);
        let strs = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .count();
        assert_eq!(strs, 2);
        assert!(toks.iter().any(|(_, s)| s == "r#type"));
        assert!(toks.iter().any(|(_, s)| s == "bare"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\n/* c\n */ b";
        let toks = tokenize(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 5); // `b` after multi-line comment
    }

    #[test]
    fn brace_matching() {
        let toks = tokenize("fn f() { if x { y } else { z } } fn g() {}");
        let open = toks.iter().position(|t| t.is_punct('{')).unwrap();
        let close = matching_brace(&toks, open);
        assert!(toks[close].is_punct('}'));
        // Everything between belongs to `f`.
        assert!(toks[open..close].iter().any(|t| t.is_ident("z")));
        assert!(!toks[open..close].iter().any(|t| t.is_ident("g")));
    }
}
