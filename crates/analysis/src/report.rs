//! Machine-readable findings: severities, the `swiftrl-findings-v1` JSON
//! schema, SARIF 2.1.0 export, and the checked-in baseline file.
//!
//! All serialization goes through the shared hand-rolled
//! [`swiftrl_telemetry::json`] layer (the telemetry crate sits at the
//! bottom of the dependency graph and is itself dependency-free, so this
//! keeps the analyzer's zero-external-dependency policy intact).
//!
//! The baseline matches findings by `(rule, file, message)` — deliberately
//! line-number-free, so unrelated edits above a baselined finding do not
//! make it reappear as "new".

use std::path::Path;

use swiftrl_telemetry::json::{parse, Json};

use crate::rules::{Finding, RULES};

/// Finding severity, surfaced in `--json` / SARIF output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Kernel-discipline violations: the cycle model is wrong if these ship.
    Error,
    /// Hygiene / determinism advisories (D-series, W001).
    Warning,
}

impl Severity {
    /// The SARIF / JSON level string.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Severity of a rule by ID: K-rules are errors, D-rules and W-rules are
/// warnings.
pub fn severity_of(rule: &str) -> Severity {
    if rule.starts_with('K') {
        Severity::Error
    } else {
        Severity::Warning
    }
}

fn finding_json(f: &Finding) -> Json {
    Json::obj([
        ("rule", Json::str(f.rule)),
        ("level", Json::str(severity_of(f.rule).as_str())),
        ("file", Json::str(f.file.display().to_string())),
        ("line", Json::UInt(u64::from(f.line))),
        ("message", Json::str(f.message.clone())),
    ])
}

/// Renders an analysis as the `swiftrl-findings-v1` document.
///
/// `baselined` counts findings suppressed by the baseline; `findings`
/// should already be the *new* (non-baselined) set.
pub fn findings_json(files_scanned: usize, findings: &[&Finding], baselined: usize) -> Json {
    Json::obj([
        ("schema", Json::str("swiftrl-findings-v1")),
        ("files_scanned", Json::UInt(files_scanned as u64)),
        ("baselined", Json::UInt(baselined as u64)),
        (
            "findings",
            Json::Arr(findings.iter().map(|f| finding_json(f)).collect()),
        ),
    ])
}

/// Renders an analysis as a SARIF 2.1.0 document (one run, one driver,
/// every registered rule described, one result per new finding).
pub fn sarif_json(findings: &[&Finding]) -> Json {
    let rules = Json::Arr(
        RULES
            .iter()
            .map(|r| {
                Json::obj([
                    ("id", Json::str(r.id)),
                    (
                        "shortDescription",
                        Json::obj([("text", Json::str(r.title))]),
                    ),
                    (
                        "fullDescription",
                        Json::obj([("text", Json::str(r.explain))]),
                    ),
                    ("help", Json::obj([("text", Json::str(r.fix_hint))])),
                    (
                        "defaultConfiguration",
                        Json::obj([(
                            "level",
                            Json::str(severity_of(r.id).as_str()),
                        )]),
                    ),
                ])
            })
            .collect(),
    );
    let results = Json::Arr(
        findings
            .iter()
            .map(|f| {
                Json::obj([
                    ("ruleId", Json::str(f.rule)),
                    ("level", Json::str(severity_of(f.rule).as_str())),
                    ("message", Json::obj([("text", Json::str(f.message.clone()))])),
                    (
                        "locations",
                        Json::Arr(vec![Json::obj([(
                            "physicalLocation",
                            Json::obj([
                                (
                                    "artifactLocation",
                                    Json::obj([(
                                        "uri",
                                        Json::str(f.file.display().to_string()),
                                    )]),
                                ),
                                (
                                    "region",
                                    Json::obj([(
                                        "startLine",
                                        Json::UInt(u64::from(f.line.max(1))),
                                    )]),
                                ),
                            ]),
                        )])]),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj([
        (
            "$schema",
            Json::str("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", Json::str("2.1.0")),
        (
            "runs",
            Json::Arr(vec![Json::obj([
                (
                    "tool",
                    Json::obj([(
                        "driver",
                        Json::obj([
                            ("name", Json::str("swiftrl-analysis")),
                            (
                                "informationUri",
                                Json::str("https://github.com/CMU-SAFARI/SwiftRL"),
                            ),
                            ("rules", rules),
                        ]),
                    )]),
                ),
                ("results", results),
            ])]),
        ),
    ])
}

/// One baseline entry; matches findings by `(rule, file, message)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule ID.
    pub rule: String,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// Exact finding message.
    pub message: String,
}

/// The checked-in allowlist: CI fails only on findings *not* in here.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Accepted findings.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses a `swiftrl-analysis-baseline-v1` document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = parse(text).map_err(|e| format!("invalid baseline JSON: {e}"))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
        if schema != "swiftrl-analysis-baseline-v1" {
            return Err(format!(
                "unexpected baseline schema `{schema}` (want swiftrl-analysis-baseline-v1)"
            ));
        }
        let mut entries = Vec::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("baseline has no `entries` array")?
        {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry missing string field `{k}`"))
            };
            entries.push(BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                message: field("message")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline accepting exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = findings
            .iter()
            .map(|f| BaselineEntry {
                rule: f.rule.to_string(),
                file: f.file.display().to_string(),
                message: f.message.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.message).cmp(&(&b.file, &b.rule, &b.message)));
        entries.dedup();
        Baseline { entries }
    }

    /// Renders the baseline document (pretty, trailing newline — stable for
    /// check-in).
    pub fn render(&self) -> String {
        Json::obj([
            ("schema", Json::str("swiftrl-analysis-baseline-v1")),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("rule", Json::str(e.rule.clone())),
                                ("file", Json::str(e.file.clone())),
                                ("message", Json::str(e.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }

    /// True if the finding is covered by some entry.
    pub fn covers(&self, f: &Finding) -> bool {
        let file = f.file.display().to_string();
        self.entries
            .iter()
            .any(|e| e.rule == f.rule && e.file == file && e.message == f.message)
    }

    /// Splits findings into `(new, baselined_count)`.
    pub fn partition<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, usize) {
        let mut fresh = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            if self.covers(f) {
                suppressed += 1;
            } else {
                fresh.push(f);
            }
        }
        (fresh, suppressed)
    }
}

/// Default baseline path under a workspace root.
pub fn baseline_path(root: &Path) -> std::path::PathBuf {
    root.join("analysis-baseline.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn finding(rule: &'static str, file: &str, line: u32, msg: &str) -> Finding {
        Finding {
            file: PathBuf::from(file),
            line,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn severities_split_kernel_vs_advisory() {
        assert_eq!(severity_of("K001"), Severity::Error);
        assert_eq!(severity_of("K010"), Severity::Error);
        assert_eq!(severity_of("D002"), Severity::Warning);
        assert_eq!(severity_of("W001"), Severity::Warning);
    }

    #[test]
    fn findings_json_round_trips_through_the_shared_parser() {
        let f1 = finding("K001", "crates/core/src/kernels.rs", 4, "host float");
        let f2 = finding("D002", "crates/core/src/runner.rs", 16, "Instant");
        let doc = findings_json(93, &[&f1, &f2], 1);
        let text = doc.render();
        let back = parse(&text).expect("round trip");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("swiftrl-findings-v1"));
        assert_eq!(back.get("files_scanned").and_then(Json::as_u64), Some(93));
        assert_eq!(back.get("baselined").and_then(Json::as_u64), Some(1));
        let arr = back.get("findings").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("level").and_then(Json::as_str), Some("error"));
        assert_eq!(arr[1].get("level").and_then(Json::as_str), Some("warning"));
        assert_eq!(arr[1].get("line").and_then(Json::as_u64), Some(16));
    }

    #[test]
    fn sarif_document_has_tool_rules_and_results() {
        let f = finding("K005", "crates/core/src/kernels.rs", 9, "thread in kernel");
        let doc = sarif_json(&[&f]);
        let text = doc.render();
        let back = parse(&text).expect("round trip");
        assert_eq!(back.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = back.get("runs").and_then(Json::as_array).unwrap();
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").and_then(Json::as_str), Some("swiftrl-analysis"));
        let rules = driver.get("rules").and_then(Json::as_array).unwrap();
        assert_eq!(rules.len(), RULES.len());
        let results = runs[0].get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("ruleId").and_then(Json::as_str), Some("K005"));
        let line = results[0]
            .get("locations")
            .and_then(Json::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Json::as_u64);
        assert_eq!(line, Some(9));
    }

    #[test]
    fn baseline_round_trips_and_partitions() {
        let known = finding("D002", "crates/core/src/runner.rs", 16, "ambient `Instant`");
        let fresh = finding("K001", "crates/core/src/kernels.rs", 4, "host float");
        let base = Baseline::from_findings(std::slice::from_ref(&known));
        let text = base.render();
        let back = Baseline::parse(&text).expect("parse rendered baseline");
        assert_eq!(back.entries, base.entries);

        // Same finding on a different line is still covered (line-free match).
        let moved = finding("D002", "crates/core/src/runner.rs", 99, "ambient `Instant`");
        let all = vec![known, moved, fresh];
        let (new, suppressed) = back.partition(&all);
        assert_eq!(suppressed, 2);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "K001");
    }

    #[test]
    fn baseline_rejects_wrong_schema_and_garbage() {
        assert!(Baseline::parse("{]").is_err());
        assert!(Baseline::parse(r#"{"schema":"other-v1","entries":[]}"#).is_err());
        assert!(Baseline::parse(r#"{"schema":"swiftrl-analysis-baseline-v1"}"#).is_err());
    }
}
