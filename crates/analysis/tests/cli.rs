//! End-to-end tests of the `swiftrl-analysis` binary: exit codes, the
//! `--json` / `--sarif` documents (round-tripped through the shared
//! hand-rolled JSON parser), baseline gating, and `--explain` parity.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use swiftrl_analysis::RULES;
use swiftrl_telemetry::json::{parse, Json};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swiftrl-analysis"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("spawn swiftrl-analysis")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

/// Creates a throwaway workspace tree with the given lib source.
fn scratch_workspace(name: &str, lib_src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swiftrl-analysis-cli-{name}-{}", std::process::id()));
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    std::fs::write(src_dir.join("lib.rs"), lib_src).expect("lib.rs");
    dir
}

/// The enclosing workspace root of this crate.
fn repo_root() -> PathBuf {
    swiftrl_analysis::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root")
}

#[test]
fn clean_tree_exits_zero() {
    let dir = scratch_workspace("clean", "pub fn ok(v: u32) -> u32 { v + 1 }\n");
    let out = run(&["--root", dir.to_str().expect("utf8 path")]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn findings_exit_one_and_name_the_rule() {
    let dir = scratch_workspace(
        "dirty",
        r#"
        impl Kernel for K {
            fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                let x = 0.5f32;
                Ok(())
            }
        }
        "#,
    );
    let out = run(&["--root", dir.to_str().expect("utf8 path")]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("K001"), "{stdout}");
    assert!(stdout.contains("[error]"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(code(&run(&["--frobnicate"])), 2);
    assert_eq!(code(&run(&["--explain"])), 2);
    assert_eq!(code(&run(&["--explain", "K999"])), 2);
    assert_eq!(code(&run(&["--root"])), 2);
    assert_eq!(code(&run(&["--sarif"])), 2);
    assert_eq!(code(&run(&["--root", "/nonexistent/definitely-not-here"])), 2);
}

#[test]
fn explain_covers_every_rule() {
    for rule in RULES {
        let out = run(&["--explain", rule.id]);
        assert_eq!(code(&out), 0, "--explain {}", rule.id);
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(rule.id), "{text}");
        assert!(text.contains("example:"), "--explain {} lacks an example", rule.id);
        assert!(text.contains("fix:"), "--explain {} lacks a fix hint", rule.id);
    }
    // Case-insensitive lookup.
    assert_eq!(code(&run(&["--explain", "k001"])), 0);
}

#[test]
fn list_names_all_rules_with_severities() {
    let out = run(&["--list"]);
    assert_eq!(code(&out), 0);
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in RULES {
        assert!(text.contains(rule.id), "{text}");
    }
    assert!(text.contains("[error]") && text.contains("[warning]"), "{text}");
}

#[test]
fn json_document_round_trips_through_shared_parser() {
    let dir = scratch_workspace(
        "json",
        r#"
        fn kernel_helper(ctx: &mut DpuContext<'_>) -> f32 { 1.5 }
        "#,
    );
    let out = run(&["--root", dir.to_str().expect("utf8 path"), "--json"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON on stdout");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("swiftrl-findings-v1")
    );
    assert_eq!(doc.get("files_scanned").and_then(Json::as_u64), Some(1));
    let findings = doc
        .get("findings")
        .and_then(Json::as_array)
        .expect("findings array");
    assert!(!findings.is_empty());
    for f in findings {
        assert_eq!(f.get("rule").and_then(Json::as_str), Some("K001"));
        assert_eq!(f.get("level").and_then(Json::as_str), Some("error"));
        assert_eq!(
            f.get("file").and_then(Json::as_str),
            Some("crates/demo/src/lib.rs")
        );
        assert!(f.get("line").and_then(Json::as_u64).is_some());
        assert!(f.get("message").and_then(Json::as_str).is_some());
    }
}

#[test]
fn sarif_document_round_trips_through_shared_parser() {
    let dir = scratch_workspace(
        "sarif",
        r#"
        fn kernel_helper(ctx: &mut DpuContext<'_>) -> f64 { 0.25 }
        "#,
    );
    let sarif_path = dir.join("out.sarif");
    let out = run(&[
        "--root",
        dir.to_str().expect("utf8 path"),
        "--sarif",
        sarif_path.to_str().expect("utf8 path"),
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
    let text = std::fs::read_to_string(&sarif_path).expect("SARIF file written");
    let doc = parse(&text).expect("valid SARIF JSON");
    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let runs = doc.get("runs").and_then(Json::as_array).expect("runs");
    let driver = runs[0].get("tool").and_then(|t| t.get("driver")).expect("driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("swiftrl-analysis")
    );
    let rules = driver.get("rules").and_then(Json::as_array).expect("rules");
    assert_eq!(rules.len(), RULES.len());
    let results = runs[0].get("results").and_then(Json::as_array).expect("results");
    assert!(!results.is_empty());
    let loc = &results[0].get("locations").and_then(Json::as_array).expect("locations")[0];
    let uri = loc
        .get("physicalLocation")
        .and_then(|p| p.get("artifactLocation"))
        .and_then(|a| a.get("uri"))
        .and_then(Json::as_str);
    assert_eq!(uri, Some("crates/demo/src/lib.rs"));
}

#[test]
fn baseline_suppresses_known_findings() {
    let dir = scratch_workspace(
        "baseline",
        r#"
        pub fn leaky(v: Option<u32>) -> u32 { v.unwrap() }
        "#,
    );
    let root = dir.to_str().expect("utf8 path");

    // Unbaselined: exit 1.
    assert_eq!(code(&run(&["--root", root])), 1);

    // Write the baseline, then the same tree is clean.
    assert_eq!(code(&run(&["--root", root, "--write-baseline"])), 0);
    let out = run(&["--root", root]);
    assert_eq!(code(&out), 0, "{out:?}");
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("1 baselined"), "{summary}");

    // --no-baseline re-surfaces it; a *new* finding still fails.
    assert_eq!(code(&run(&["--root", root, "--no-baseline"])), 1);
    std::fs::write(
        dir.join("crates/demo/src/extra.rs"),
        "pub fn also_leaky(v: Option<u32>) -> u32 { v.expect(\"boom\") }\n",
    )
    .expect("write extra source");
    assert_eq!(code(&run(&["--root", root])), 1);

    // A corrupt baseline is a usage error, not a silent pass.
    std::fs::write(dir.join("analysis-baseline.json"), "{not json").expect("corrupt");
    assert_eq!(code(&run(&["--root", root])), 2);
}

#[test]
fn repo_baseline_matches_workspace() {
    // The checked-in baseline must gate the real repository to zero new
    // findings — the analyzer is self-clean. (Skipped when run outside
    // the real repo tree, i.e. no baseline is checked in; the root-level
    // `tests/analysis_clean.rs` suite enforces the same invariant there.)
    let root = repo_root();
    if !root.join("analysis-baseline.json").is_file() {
        return;
    }
    let out = run(&["--root", root.to_str().expect("utf8 path"), "--json"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let doc = parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("findings").and_then(Json::as_array).map(|a| a.len()),
        Some(0)
    );
    assert!(doc.get("baselined").and_then(Json::as_u64).unwrap_or(0) >= 1);
}
