//! The roofline model of Figure 2.
//!
//! Figure 2 plots the CPU versions of the Q-learner ("Q") and SARSA
//! learner ("S") at two dataset sizes (1M and 20M transitions) against
//! the compute and DRAM-bandwidth roofs of an Intel i7-9700K, showing
//! that all four points sit in the memory-bound region — the paper's
//! motivation for moving RL training to PIM.
//!
//! Arithmetic intensity is computed from the update kernels' actual
//! per-update FLOP and DRAM-byte counts: the Q-table of the small
//! environments is cache-resident, so DRAM traffic is dominated by
//! streaming the experience records.

use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// One workload point on the roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label, e.g. `Q-1M`.
    pub name: String,
    /// FLOPs per byte of DRAM traffic.
    pub arithmetic_intensity: f64,
    /// Attainable GFLOPS under the roofline: `min(peak, AI × BW)`.
    pub attainable_gflops: f64,
    /// True if the bandwidth roof binds (memory-bound region).
    pub memory_bound: bool,
}

/// The machine whose roofs Figure 2 uses.
pub fn figure2_machine() -> MachineSpec {
    MachineSpec::i7_9700k()
}

/// Computes a roofline point for a workload on `machine`.
///
/// # Panics
///
/// Panics if `bytes_per_update` is zero.
pub fn roofline_point(
    name: impl Into<String>,
    flops_per_update: f64,
    bytes_per_update: f64,
    machine: &MachineSpec,
) -> RooflinePoint {
    assert!(bytes_per_update > 0.0, "bytes per update must be positive");
    let ai = flops_per_update / bytes_per_update;
    let bw_roof = ai * machine.memory_bandwidth_gbps;
    let attainable = bw_roof.min(machine.peak_gops);
    RooflinePoint {
        name: name.into(),
        arithmetic_intensity: ai,
        attainable_gflops: attainable,
        memory_bound: bw_roof < machine.peak_gops,
    }
}

/// Per-update FLOPs of the Q-learning kernel for `num_actions` actions:
/// `A − 1` comparisons of the max scan + 2 multiplies + 3 adds/subs.
pub fn q_learning_flops(num_actions: usize) -> f64 {
    (num_actions - 1) as f64 + 5.0
}

/// Per-update FLOPs of the SARSA kernel: the ε-greedy argmax scan + 2
/// multiplies + 3 adds/subs ("the same arithmetic intensity as
/// Q-learning", §3.2.2).
pub fn sarsa_flops(num_actions: usize) -> f64 {
    (num_actions - 1) as f64 + 5.0
}

/// DRAM bytes per update when the dataset of `transitions` 16-byte
/// records does not fit in `llc_bytes` of cache (it streams) and the
/// Q-table is cache-resident. Larger-than-cache datasets also pay partial
/// write-back traffic, modelled as 4 extra bytes.
pub fn bytes_per_update(transitions: usize, llc_bytes: usize) -> f64 {
    let dataset_bytes = transitions * 16;
    if dataset_bytes <= llc_bytes {
        // Fully cached after the first episode: only coherence noise.
        2.0
    } else {
        16.0 + 4.0
    }
}

/// The four points of Figure 2: Q/SARSA at 1M and 20M transitions
/// (FrozenLake-shaped, 4 actions) on the i7-9700K (12 MB LLC).
pub fn figure2_points() -> Vec<RooflinePoint> {
    let machine = figure2_machine();
    let llc = 12 << 20;
    let mut out = Vec::new();
    for (tag, flops) in [("Q", q_learning_flops(4)), ("S", sarsa_flops(4))] {
        for (size_tag, transitions) in [("1M", 1_000_000usize), ("20M", 20_000_000)] {
            out.push(roofline_point(
                format!("{tag}-{size_tag}"),
                flops,
                bytes_per_update(transitions, llc),
                &machine,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_all_points_memory_bound() {
        let points = figure2_points();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.memory_bound, "{} should be memory bound", p.name);
            assert!(p.attainable_gflops < figure2_machine().peak_gops);
        }
    }

    #[test]
    fn arithmetic_intensity_is_below_machine_balance() {
        let m = figure2_machine();
        let balance = m.peak_gops / m.memory_bandwidth_gbps;
        for p in figure2_points() {
            assert!(p.arithmetic_intensity < balance);
        }
    }

    #[test]
    fn q_and_sarsa_share_intensity() {
        // §3.2.2: "SARSA learner follows the same arithmetic intensity
        // as Q-learning".
        assert_eq!(q_learning_flops(4), sarsa_flops(4));
        assert_eq!(q_learning_flops(6), sarsa_flops(6));
    }

    #[test]
    fn cached_dataset_raises_intensity() {
        let llc = 12 << 20;
        let small = bytes_per_update(10_000, llc); // 160 KB: cached
        let large = bytes_per_update(1_000_000, llc); // 16 MB: streams
        assert!(small < large);
    }

    #[test]
    fn compute_bound_kernel_detected() {
        // A hypothetical high-intensity kernel must hit the flat roof.
        let p = roofline_point("dense", 10_000.0, 4.0, &figure2_machine());
        assert!(!p.memory_bound);
        assert_eq!(p.attainable_gflops, figure2_machine().peak_gops);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bytes_rejected() {
        roofline_point("bad", 1.0, 0.0, &figure2_machine());
    }
}
