//! Machine specifications from Table 1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A machine row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Marketing name.
    pub name: String,
    /// Process node description.
    pub process_node: String,
    /// Core/DPU count description.
    pub total_cores: String,
    /// Clock frequency in MHz.
    pub frequency_mhz: u64,
    /// Peak throughput in GOPS (integer) or GFLOPS.
    pub peak_gops: f64,
    /// Main memory capacity in GB.
    pub memory_gb: f64,
    /// Memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Component TDP in watts.
    pub tdp_w: f64,
}

impl MachineSpec {
    /// The evaluated UPMEM PIM server (2,524 DPUs @ 425 MHz).
    pub fn upmem_pim() -> Self {
        Self {
            name: "UPMEM PIM System".into(),
            process_node: "2x nm".into(),
            total_cores: "2,524".into(),
            frequency_mhz: 425,
            peak_gops: 1_088.0,
            memory_gb: 158.0,
            memory_bandwidth_gbps: 2_145.0,
            tdp_w: 280.0,
        }
    }

    /// The baseline CPU: Intel Xeon Silver 4110.
    pub fn xeon_silver_4110() -> Self {
        Self {
            name: "Intel Xeon Silver 4110 CPU".into(),
            process_node: "14 nm".into(),
            total_cores: "8 (16 threads)".into(),
            frequency_mhz: 2_400,
            peak_gops: 38.0,
            memory_gb: 132.0,
            memory_bandwidth_gbps: 28.8,
            tdp_w: 85.0,
        }
    }

    /// The baseline GPU: NVIDIA Ampere RTX 3090.
    pub fn rtx_3090() -> Self {
        Self {
            name: "NVIDIA Ampere RTX 3090 GPU".into(),
            process_node: "8 nm".into(),
            total_cores: "82 cores (10496 SIMD lanes)".into(),
            frequency_mhz: 1_700,
            peak_gops: 35_580.0,
            memory_gb: 24.0,
            memory_bandwidth_gbps: 936.2,
            tdp_w: 350.0,
        }
    }

    /// The roofline host of Figure 2: Intel Core i7-9700K (Coffee Lake).
    pub fn i7_9700k() -> Self {
        Self {
            name: "Intel Core i7-9700K CPU".into(),
            process_node: "14 nm".into(),
            total_cores: "8".into(),
            frequency_mhz: 3_600,
            peak_gops: 460.0,
            memory_gb: 32.0,
            memory_bandwidth_gbps: 41.6,
            tdp_w: 95.0,
        }
    }

    /// The three Table 1 rows in paper order.
    pub fn table1() -> [MachineSpec; 3] {
        [
            Self::upmem_pim(),
            Self::xeon_silver_4110(),
            Self::rtx_3090(),
        ]
    }

    /// Peak performance per watt (GOPS/W).
    pub fn gops_per_watt(&self) -> f64 {
        self.peak_gops / self.tdp_w
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cores @ {} MHz, {:.0} GOPS peak, {:.0} GB @ {:.1} GB/s, {:.0} W",
            self.name,
            self.total_cores,
            self.frequency_mhz,
            self.peak_gops,
            self.memory_gb,
            self.memory_bandwidth_gbps,
            self.tdp_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let [pim, cpu, gpu] = MachineSpec::table1();
        assert_eq!(pim.frequency_mhz, 425);
        assert_eq!(pim.peak_gops, 1_088.0);
        assert_eq!(pim.memory_bandwidth_gbps, 2_145.0);
        assert_eq!(cpu.memory_bandwidth_gbps, 28.8);
        assert_eq!(cpu.peak_gops, 38.0);
        assert_eq!(gpu.peak_gops, 35_580.0);
        assert_eq!(gpu.memory_gb, 24.0);
    }

    #[test]
    fn pim_has_most_bandwidth_gpu_most_compute() {
        let [pim, cpu, gpu] = MachineSpec::table1();
        assert!(pim.memory_bandwidth_gbps > gpu.memory_bandwidth_gbps);
        assert!(gpu.memory_bandwidth_gbps > cpu.memory_bandwidth_gbps);
        assert!(gpu.peak_gops > pim.peak_gops);
    }

    #[test]
    fn display_is_informative() {
        let s = MachineSpec::upmem_pim().to_string();
        assert!(s.contains("UPMEM") && s.contains("425"));
    }
}
