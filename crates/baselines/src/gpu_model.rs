//! Analytical execution-time model of the GPU baseline.
//!
//! No CUDA device is available offline, so the RTX 3090 comparison is a
//! throughput model (documented substitution, see DESIGN.md). Tabular
//! Q-learning on a GPU parallelizes the batch of updates across SIMD
//! lanes, but conflicting updates to the same Q-table entry must
//! serialize through atomics, so the achievable update rate is capped by
//! **table parallelism** — tiny tables like FrozenLake's 64 entries leave
//! almost all of the GPU idle, which is why the paper's GPU is only
//! modestly faster than PIM on FP32 and *slower* than the INT32 PIM
//! version (§4.4, observation 4).

use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// Analytical GPU training-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// The machine being modelled.
    pub spec: MachineSpec,
    /// Serialization latency of conflicting atomic updates to one Q-table
    /// entry, nanoseconds.
    pub atomic_latency_ns: f64,
    /// FLOPs per Q-value update (scan + target + blend).
    pub flops_per_update: f64,
    /// Fraction of peak FLOPS achievable on this irregular kernel.
    pub compute_efficiency: f64,
    /// Bytes touched per update (record + table lines).
    pub bytes_per_update: f64,
    /// Kernel-launch overhead per episode, seconds.
    pub launch_overhead_s: f64,
}

impl GpuModel {
    /// The paper's baseline: RTX 3090.
    pub fn rtx_3090() -> Self {
        Self {
            spec: MachineSpec::rtx_3090(),
            atomic_latency_ns: 290.0,
            flops_per_update: 24.0,
            compute_efficiency: 0.02,
            bytes_per_update: 40.0,
            launch_overhead_s: 5.0e-6,
        }
    }

    /// Sustainable update rate (updates/second) for a Q-table with
    /// `table_entries` entries: the minimum of the entry-serialization,
    /// bandwidth, and compute limits.
    pub fn update_rate(&self, table_entries: usize) -> f64 {
        let entry_limit = table_entries as f64 / (self.atomic_latency_ns * 1.0e-9);
        let bw_limit = self.spec.memory_bandwidth_gbps * 1.0e9 / self.bytes_per_update;
        let compute_limit =
            self.spec.peak_gops * 1.0e9 * self.compute_efficiency / self.flops_per_update;
        entry_limit.min(bw_limit).min(compute_limit)
    }

    /// Modelled seconds to run `episodes` episodes of `updates_per_episode`
    /// updates each on a table with `table_entries` entries.
    pub fn training_seconds(
        &self,
        episodes: u64,
        updates_per_episode: u64,
        table_entries: usize,
    ) -> f64 {
        let updates = episodes as f64 * updates_per_episode as f64;
        updates / self.update_rate(table_entries) + episodes as f64 * self.launch_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_tables_are_entry_limited() {
        let g = GpuModel::rtx_3090();
        // FrozenLake: 64 entries.
        let fl_rate = g.update_rate(64);
        // Entry limit: 64 / 290ns ≈ 221 M/s — far below bandwidth/compute.
        assert!(fl_rate < 3.0e8, "{fl_rate}");
        // Taxi: 3000 entries — another limit should bind.
        let taxi_rate = g.update_rate(3_000);
        assert!(taxi_rate > fl_rate * 5.0);
    }

    #[test]
    fn rate_is_monotone_in_table_size_and_saturates() {
        let g = GpuModel::rtx_3090();
        let mut last = 0.0;
        for entries in [16, 64, 256, 3_000, 100_000, 10_000_000] {
            let r = g.update_rate(entries);
            assert!(r >= last);
            last = r;
        }
        // Eventually capped by bandwidth or compute, not entries.
        assert!(last <= g.spec.memory_bandwidth_gbps * 1.0e9 / g.bytes_per_update + 1.0);
    }

    #[test]
    fn training_time_includes_launch_overhead() {
        let g = GpuModel::rtx_3090();
        let with_eps = g.training_seconds(2_000, 1, 64);
        assert!(with_eps >= 2_000.0 * g.launch_overhead_s);
    }

    #[test]
    fn frozenlake_magnitude_is_seconds_not_milliseconds() {
        // 2,000 episodes × 1M updates on 64 entries: the paper's GPU bar
        // is of the same order as the PIM FP32 bar (a few seconds+).
        let g = GpuModel::rtx_3090();
        let t = g.training_seconds(2_000, 1_000_000, 64);
        assert!(t > 1.0 && t < 120.0, "{t}");
    }
}
