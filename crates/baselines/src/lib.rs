//! # swiftrl-baselines
//!
//! The comparison systems of the SwiftRL evaluation (§4.4):
//!
//! * [`cpu_exec`] — *real*, runnable multithreaded CPU baselines:
//!   **CPU-V1** (threads share one Q-table) and **CPU-V2** (threads train
//!   local Q-tables on disjoint chunks, aggregated at the end), matching
//!   the paper's two CPU versions;
//! * [`cpu_model`] / [`gpu_model`] — analytical execution-time models of
//!   the Xeon Silver 4110 and RTX 3090 from Table 1, used when comparing
//!   against the *simulated* PIM platform so that both sides live in the
//!   same modelled time base (the host running this reproduction is not a
//!   Xeon 4110, and no CUDA GPU is available offline — see DESIGN.md);
//! * [`specs`] — the Table 1 machine descriptions;
//! * [`roofline`] — the roofline model of Figure 2 (arithmetic intensity
//!   of the RL workloads against the i7-9700K's compute and DRAM roofs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_exec;
pub mod cpu_model;
pub mod energy;
pub mod gpu_model;
pub mod roofline;
pub mod specs;

pub use cpu_exec::{train_cpu_v1, train_cpu_v2};
pub use cpu_model::{CpuModel, CpuVersion};
pub use gpu_model::GpuModel;
pub use specs::MachineSpec;
