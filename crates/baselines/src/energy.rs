//! Energy estimates for the evaluated systems.
//!
//! The paper motivates PIM partly by the energy cost of processor-centric
//! data movement (§1) but reports no energy numbers; this module is the
//! reproduction's extension: first-order energy estimates from Table 1
//! TDPs and modelled execution times, enough to compare the *platforms*
//! (not a power simulator).

use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};

/// First-order energy estimate for one training run on one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// System name.
    pub system: String,
    /// Execution time used, seconds.
    pub seconds: f64,
    /// Average power assumed, watts.
    pub watts: f64,
    /// Estimated energy, joules.
    pub joules: f64,
}

/// Estimates energy as `TDP × utilization × time`.
///
/// `utilization` is the fraction of TDP the workload sustains: ~1.0 for
/// a busy PIM system (every bank computing), lower for a GPU running a
/// tiny tabular kernel.
///
/// # Panics
///
/// Panics if `utilization` is outside `(0, 1]` or `seconds` is negative.
pub fn estimate(spec: &MachineSpec, seconds: f64, utilization: f64) -> EnergyEstimate {
    assert!(
        utilization > 0.0 && utilization <= 1.0,
        "utilization must be in (0, 1]"
    );
    assert!(seconds >= 0.0, "negative execution time");
    let watts = spec.tdp_w * utilization;
    EnergyEstimate {
        system: spec.name.clone(),
        seconds,
        watts,
        joules: watts * seconds,
    }
}

/// Default sustained-utilization assumptions for the three Table 1
/// systems on the tabular-RL workloads: PIM banks all active; the CPU's
/// update loop keeps cores busy but under-uses vector units; the GPU is
/// mostly idle on a 64–3,000-entry table.
pub mod utilization {
    /// UPMEM PIM running one kernel per DPU.
    pub const PIM: f64 = 0.9;
    /// Xeon running the threaded update loop.
    pub const CPU: f64 = 0.7;
    /// RTX 3090 running a tiny, conflict-bound kernel.
    pub const GPU: f64 = 0.25;
}

/// Convenience: the three-system comparison for given execution times.
pub fn table1_comparison(pim_s: f64, cpu_s: f64, gpu_s: f64) -> [EnergyEstimate; 3] {
    [
        estimate(&MachineSpec::upmem_pim(), pim_s, utilization::PIM),
        estimate(&MachineSpec::xeon_silver_4110(), cpu_s, utilization::CPU),
        estimate(&MachineSpec::rtx_3090(), gpu_s, utilization::GPU),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let e = estimate(&MachineSpec::xeon_silver_4110(), 10.0, 0.5);
        assert!((e.watts - 42.5).abs() < 1e-9);
        assert!((e.joules - 425.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_orders_sanely_for_equal_times() {
        let [pim, cpu, gpu] = table1_comparison(10.0, 10.0, 10.0);
        // At equal runtime the GPU's low utilization keeps it below its
        // 350 W TDP, while PIM draws near its 280 W.
        assert!(pim.joules > cpu.joules);
        assert!(gpu.joules < pim.joules);
    }

    #[test]
    fn pim_wins_when_faster() {
        // FrozenLake INT32-ish scenario: PIM 3 s vs CPU 24 s vs GPU 9 s.
        let [pim, cpu, gpu] = table1_comparison(3.0, 24.0, 9.0);
        assert!(pim.joules < cpu.joules);
        assert!(pim.joules < gpu.joules);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        estimate(&MachineSpec::upmem_pim(), 1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_rejected() {
        estimate(&MachineSpec::upmem_pim(), -1.0, 0.5);
    }
}
