//! Real, runnable multithreaded CPU baselines (the paper's CPU-V1 and
//! CPU-V2, §4.4).
//!
//! * **CPU-V1** — worker threads share a single Q-table; each thread
//!   walks its own portion of the dataset and updates the shared table.
//!   Like the C reference, updates are plain (relaxed) loads and stores —
//!   concurrent updates may overwrite each other, which is exactly the
//!   lossy-but-fast behaviour of the shared-table baseline.
//! * **CPU-V2** — worker threads train *local* Q-tables on disjoint
//!   chunks; the final table is the element-wise average (the distributed
//!   version).
//!
//! Both return measured wall-clock seconds. On this reproduction's host
//! the absolute numbers reflect the local machine, not the paper's Xeon
//! Silver 4110 — use [`crate::cpu_model`] when comparing against
//! *modelled* PIM time.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use swiftrl_env::ExperienceDataset;
use swiftrl_rl::policy::epsilon_threshold;
use swiftrl_rl::qtable::QTable;
use swiftrl_rl::rng::Lcg32;
use swiftrl_rl::sampling::SamplingStrategy;

/// Which update rule the baseline applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateRule {
    /// Q-learning (max over next actions).
    QLearning,
    /// SARSA with ε-greedy next-action selection.
    Sarsa {
        /// Exploration rate for the next-action draw.
        epsilon: f32,
    },
}

/// Result of a measured CPU baseline run.
#[derive(Debug, Clone)]
pub struct CpuRunResult {
    /// The trained (for V2: aggregated) Q-table.
    pub q_table: QTable,
    /// Measured wall-clock training seconds on the local host.
    pub seconds: f64,
    /// Threads used.
    pub threads: usize,
}

/// Shared-table view used by CPU-V1.
struct SharedQ<'a> {
    values: &'a [AtomicU32],
    num_actions: usize,
}

impl SharedQ<'_> {
    #[inline]
    fn get(&self, s: u32, a: u32) -> f32 {
        f32::from_bits(
            self.values[s as usize * self.num_actions + a as usize].load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn set(&self, s: u32, a: u32, v: f32) {
        self.values[s as usize * self.num_actions + a as usize]
            .store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn max_row(&self, s: u32) -> f32 {
        (0..self.num_actions as u32)
            .map(|a| self.get(s, a))
            .fold(f32::NEG_INFINITY, f32::max)
    }

    #[inline]
    fn greedy(&self, s: u32) -> u32 {
        let mut best = 0u32;
        let mut best_v = self.get(s, 0);
        for a in 1..self.num_actions as u32 {
            let v = self.get(s, a);
            if v > best_v {
                best_v = v;
                best = a;
            }
        }
        best
    }
}

/// CPU-V1: multiple threads update a shared Q-table, each over its own
/// portion of the dataset.
///
/// # Panics
///
/// Panics if `threads == 0` or the dataset is empty.
// The flat parameter list mirrors the paper's training-call signature
// (Algorithm 1); bundling into a config struct would only obscure it.
#[allow(clippy::too_many_arguments)]
pub fn train_cpu_v1(
    dataset: &ExperienceDataset,
    rule: UpdateRule,
    alpha: f32,
    gamma: f32,
    episodes: u32,
    sampling: SamplingStrategy,
    threads: usize,
    seed: u32,
) -> CpuRunResult {
    assert!(threads > 0, "need at least one thread");
    assert!(!dataset.is_empty(), "empty dataset");
    let ns = dataset.num_states();
    let na = dataset.num_actions();
    let values: Vec<AtomicU32> = (0..ns * na).map(|_| AtomicU32::new(0)).collect();
    let chunks = split_ranges(dataset.len(), threads);
    let eps_threshold = match rule {
        UpdateRule::Sarsa { epsilon } => epsilon_threshold(epsilon),
        UpdateRule::QLearning => 0,
    };

    let start = Instant::now();
    let scope_result = crossbeam::scope(|scope| {
        for (tid, range) in chunks.iter().enumerate() {
            let values = &values;
            let transitions = &dataset.transitions()[range.clone()];
            scope.spawn(move |_| {
                let shared = SharedQ {
                    values,
                    num_actions: na,
                };
                let mut policy_rng = Lcg32::new(seed ^ (tid as u32).wrapping_mul(0x9E37_79B9));
                for ep in 0..episodes {
                    let ep_seed = seed
                        .wrapping_add(ep)
                        .wrapping_add(tid as u32)
                        .wrapping_mul(0x9E37_79B9);
                    for i in sampling.indices(transitions.len(), ep_seed) {
                        let t = &transitions[i];
                        let bootstrap = if t.done {
                            0.0
                        } else {
                            match rule {
                                UpdateRule::QLearning => shared.max_row(t.next_state.0),
                                UpdateRule::Sarsa { .. } => {
                                    let a = if (policy_rng.next_raw() as u64) < eps_threshold {
                                        policy_rng.below(na as u32)
                                    } else {
                                        shared.greedy(t.next_state.0)
                                    };
                                    shared.get(t.next_state.0, a)
                                }
                            }
                        };
                        let target = t.reward + gamma * bootstrap;
                        let old = shared.get(t.state.0, t.action.0);
                        shared.set(t.state.0, t.action.0, old + alpha * (target - old));
                    }
                }
            });
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    let seconds = start.elapsed().as_secs_f64();

    let mut q = QTable::zeros(ns, na);
    for s in 0..ns as u32 {
        for a in 0..na as u32 {
            q.set(
                swiftrl_env::State(s),
                swiftrl_env::Action(a),
                f32::from_bits(values[s as usize * na + a as usize].load(Ordering::Relaxed)),
            );
        }
    }
    CpuRunResult {
        q_table: q,
        seconds,
        threads,
    }
}

/// CPU-V2: threads train local Q-tables over disjoint chunks; the final
/// table is their average.
///
/// # Panics
///
/// Panics if `threads == 0` or the dataset is empty.
// Same flat signature as `train_cpu_v1`, for side-by-side comparison.
#[allow(clippy::too_many_arguments)]
pub fn train_cpu_v2(
    dataset: &ExperienceDataset,
    rule: UpdateRule,
    alpha: f32,
    gamma: f32,
    episodes: u32,
    sampling: SamplingStrategy,
    threads: usize,
    seed: u32,
) -> CpuRunResult {
    assert!(threads > 0, "need at least one thread");
    assert!(!dataset.is_empty(), "empty dataset");
    let ns = dataset.num_states();
    let na = dataset.num_actions();
    let chunks = split_ranges(dataset.len(), threads);

    let start = Instant::now();
    let scope_result = crossbeam::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(tid, range)| {
                let transitions = &dataset.transitions()[range.clone()];
                scope.spawn(move |_| {
                    let mut q = QTable::zeros(ns, na);
                    let mut policy_rng =
                        Lcg32::new(seed ^ (tid as u32).wrapping_mul(0x9E37_79B9));
                    for ep in 0..episodes {
                        let ep_seed = seed
                            .wrapping_add(ep)
                            .wrapping_add(tid as u32)
                            .wrapping_mul(0x9E37_79B9);
                        for i in sampling.indices(transitions.len(), ep_seed) {
                            let t = &transitions[i];
                            match rule {
                                UpdateRule::QLearning => {
                                    swiftrl_rl::qlearning::q_update(&mut q, t, alpha, gamma)
                                }
                                UpdateRule::Sarsa { epsilon } => swiftrl_rl::sarsa::sarsa_update(
                                    &mut q,
                                    t,
                                    alpha,
                                    gamma,
                                    epsilon,
                                    &mut policy_rng,
                                ),
                            }
                        }
                    }
                    q
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(q) => q,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let locals: Vec<QTable> = match scope_result {
        Ok(locals) => locals,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let q_table = QTable::mean_of(&locals);
    let seconds = start.elapsed().as_secs_f64();

    CpuRunResult {
        q_table,
        seconds,
        threads,
    }
}

fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftrl_env::collect::collect_random;
    use swiftrl_env::frozen_lake::FrozenLake;
    use swiftrl_rl::eval::evaluate_greedy;

    fn dataset() -> ExperienceDataset {
        let mut env = FrozenLake::slippery_4x4();
        collect_random(&mut env, 5_000, 21)
    }

    #[test]
    fn v1_single_thread_learns_a_usable_policy() {
        // With one thread V1 is deterministic, so a real quality bar holds.
        let d = dataset();
        let r = train_cpu_v1(
            &d,
            UpdateRule::QLearning,
            0.1,
            0.95,
            80,
            SamplingStrategy::Sequential,
            1,
            1,
        );
        let mut env = FrozenLake::slippery_4x4();
        let stats = evaluate_greedy(&mut env, &r.q_table, 300, 9);
        assert!(stats.mean_reward > 0.3, "mean reward {}", stats.mean_reward);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn v1_multithreaded_makes_progress() {
        // Multithreaded V1 is deliberately racy (lossy shared-table
        // updates), so only assert that learning happened at all.
        let d = dataset();
        let r = train_cpu_v1(
            &d,
            UpdateRule::QLearning,
            0.1,
            0.95,
            40,
            SamplingStrategy::Sequential,
            4,
            1,
        );
        assert!(r.q_table.values().iter().any(|&v| v != 0.0));
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn v2_learns_a_usable_policy() {
        let d = dataset();
        let r = train_cpu_v2(
            &d,
            UpdateRule::QLearning,
            0.1,
            0.95,
            60,
            SamplingStrategy::Sequential,
            4,
            1,
        );
        let mut env = FrozenLake::slippery_4x4();
        let stats = evaluate_greedy(&mut env, &r.q_table, 300, 9);
        assert!(stats.mean_reward > 0.2, "mean reward {}", stats.mean_reward);
    }

    #[test]
    fn v2_single_thread_equals_reference_trainer() {
        let d = dataset();
        let r = train_cpu_v2(
            &d,
            UpdateRule::QLearning,
            0.1,
            0.95,
            10,
            SamplingStrategy::Sequential,
            1,
            5,
        );
        let mut host = QTable::zeros(16, 4);
        let cfg = swiftrl_rl::qlearning::QLearningConfig {
            alpha: 0.1,
            gamma: 0.95,
            episodes: 10,
        };
        // Thread 0's episode seed stream: seed+ep+0 then golden multiply,
        // matching the reference trainer's seeding with the same base.
        swiftrl_rl::qlearning::train_offline_into(
            &mut host,
            d.transitions(),
            &cfg,
            SamplingStrategy::Sequential,
            5,
        );
        assert_eq!(r.q_table, host);
    }

    #[test]
    fn sarsa_rules_run_on_both_versions() {
        let d = dataset();
        let rule = UpdateRule::Sarsa { epsilon: 0.1 };
        let v1 = train_cpu_v1(&d, rule, 0.1, 0.95, 10, SamplingStrategy::Random, 2, 3);
        let v2 = train_cpu_v2(&d, rule, 0.1, 0.95, 10, SamplingStrategy::Random, 2, 3);
        assert!(v1.q_table.values().iter().any(|&v| v != 0.0));
        assert!(v2.q_table.values().iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        train_cpu_v1(
            &dataset(),
            UpdateRule::QLearning,
            0.1,
            0.95,
            1,
            SamplingStrategy::Sequential,
            0,
            0,
        );
    }
}
