//! Analytical execution-time model of the CPU baselines.
//!
//! The reproduction's PIM numbers come from a cycle-level simulator, so
//! the CPU side of every PIM-vs-CPU figure must also be *modelled* (the
//! machine running this code is not a Xeon Silver 4110). The model
//! captures the effects the paper's §4.4 observations hinge on:
//!
//! * per-update compute cost grows with the action-space size;
//! * SEQ/STR sampling streams the dataset through the hardware
//!   prefetcher at DRAM bandwidth, while RAN sampling pays (partially
//!   overlapped) DRAM latency per access — the paper's "CPU hardware
//!   prefetcher's strong capability" takeaway;
//! * **CPU-V1** shares one Q-table among threads, so small tables (few
//!   cache lines, e.g. FrozenLake's 4-line table) suffer coherence
//!   ping-pong that can erase the multithreading gain; **CPU-V2** trains
//!   thread-local tables and scales almost linearly.
//!
//! Constants are exposed as fields with documented defaults.

use crate::specs::MachineSpec;
use serde::{Deserialize, Serialize};
use swiftrl_rl::sampling::SamplingStrategy;

/// Which CPU baseline implementation is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuVersion {
    /// Threads update one shared Q-table.
    V1,
    /// Threads update local Q-tables over disjoint dataset chunks.
    V2,
}

/// Analytical CPU training-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// The machine being modelled.
    pub spec: MachineSpec,
    /// Worker threads used by the baselines.
    pub threads: usize,
    /// Sustained instructions per cycle of the update loop.
    pub ipc: f64,
    /// Instructions per update beyond the per-action scan.
    pub base_ops_per_update: f64,
    /// Instructions per action in the `max`/argmax scan.
    pub ops_per_action: f64,
    /// Per-core streaming bandwidth for SEQ/STR dataset reads, GB/s.
    pub stream_bw_per_core_gbps: f64,
    /// Effective DRAM latency per RAN access after memory-level
    /// parallelism, nanoseconds.
    pub random_access_ns: f64,
    /// Coherence ping-pong factor for CPU-V1: contention multiplier is
    /// `1 + factor * (threads - 1) / q_table_cache_lines`.
    pub ping_pong_factor: f64,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Slowdown factor of the multi-agent baseline relative to a tight
    /// single-learner loop. The paper's measured 996.52 s for 1,000
    /// agents × 10,000 transitions × 2,000 episodes implies ≈50 ns per
    /// update with agents executing serially (2,000 agents take exactly
    /// 1.95× as long) — roughly 7× a tight C update loop, consistent
    /// with the per-agent framework and cache-thrash overhead of running
    /// thousands of independent learners. Calibrated to that number.
    pub multi_agent_overhead: f64,
}

impl CpuModel {
    /// The paper's baseline: Xeon Silver 4110 with 8 worker threads.
    pub fn xeon_4110() -> Self {
        Self {
            spec: MachineSpec::xeon_silver_4110(),
            threads: 8,
            ipc: 2.0,
            base_ops_per_update: 14.0,
            ops_per_action: 2.0,
            stream_bw_per_core_gbps: 5.0,
            random_access_ns: 9.0,
            ping_pong_factor: 7.4,
            line_bytes: 64,
            multi_agent_overhead: 7.25,
        }
    }

    /// Seconds for one Q-value update on a single thread (compute +
    /// dataset-access components).
    pub fn single_thread_update_seconds(
        &self,
        num_actions: usize,
        sampling: SamplingStrategy,
    ) -> f64 {
        let ops = self.base_ops_per_update + self.ops_per_action * num_actions as f64;
        // Turbo clock for the tight loop.
        let freq = self.spec.frequency_mhz as f64 * 1.0e6 * 1.25;
        let compute = ops / (self.ipc * freq);
        let mem = match sampling {
            SamplingStrategy::Sequential | SamplingStrategy::Stride(_) => {
                16.0 / (self.stream_bw_per_core_gbps * 1.0e9)
            }
            SamplingStrategy::Random => self.random_access_ns * 1.0e-9,
        };
        compute + mem
    }

    /// CPU-V1 contention multiplier for a Q-table of the given shape.
    pub fn v1_contention(&self, num_states: usize, num_actions: usize) -> f64 {
        let table_bytes = num_states * num_actions * 4;
        let lines = (table_bytes / self.line_bytes).max(1) as f64;
        1.0 + self.ping_pong_factor * (self.threads as f64 - 1.0) / lines
    }

    /// Modelled wall-clock seconds to perform `total_updates` Q-value
    /// updates over a dataset with the given table shape.
    pub fn training_seconds(
        &self,
        version: CpuVersion,
        total_updates: u64,
        num_states: usize,
        num_actions: usize,
        sampling: SamplingStrategy,
    ) -> f64 {
        let t1 = self.single_thread_update_seconds(num_actions, sampling);
        let serial = total_updates as f64 * t1;
        match version {
            CpuVersion::V1 => serial * self.v1_contention(num_states, num_actions) / self.threads as f64,
            CpuVersion::V2 => {
                // Near-linear scaling plus a final table-merge pass.
                let merge = (self.threads * num_states * num_actions * 4) as f64
                    / (self.spec.memory_bandwidth_gbps * 1.0e9);
                serial / self.threads as f64 + merge
            }
        }
    }

    /// Modelled seconds for the multi-agent CPU baseline: `agents`
    /// independent tabular learners executed serially (the paper's
    /// baseline scales exactly linearly in agents), each paying
    /// [`CpuModel::multi_agent_overhead`] over a tight update loop.
    pub fn multi_agent_seconds(
        &self,
        agents: usize,
        updates_per_agent: u64,
        num_actions: usize,
    ) -> f64 {
        let t1 = self.single_thread_update_seconds(num_actions, SamplingStrategy::Sequential);
        agents as f64 * updates_per_agent as f64 * t1 * self.multi_agent_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FL: (usize, usize) = (16, 4);
    const TAXI: (usize, usize) = (500, 6);

    #[test]
    fn random_sampling_is_slower_than_sequential() {
        let m = CpuModel::xeon_4110();
        let seq = m.single_thread_update_seconds(4, SamplingStrategy::Sequential);
        let ran = m.single_thread_update_seconds(4, SamplingStrategy::Random);
        assert!(ran > seq * 1.5, "prefetcher advantage missing: {seq} vs {ran}");
        let strided = m.single_thread_update_seconds(4, SamplingStrategy::Stride(4));
        assert_eq!(seq, strided, "stride streams like sequential on CPU");
    }

    #[test]
    fn v1_contention_is_severe_on_small_tables_only() {
        let m = CpuModel::xeon_4110();
        let fl = m.v1_contention(FL.0, FL.1);
        let taxi = m.v1_contention(TAXI.0, TAXI.1);
        assert!(fl > 5.0, "FrozenLake table should thrash: {fl}");
        assert!(taxi < 1.5, "Taxi table should barely contend: {taxi}");
    }

    #[test]
    fn v2_beats_v1_on_small_tables() {
        let m = CpuModel::xeon_4110();
        let updates = 2_000_000_000;
        let v1 = m.training_seconds(CpuVersion::V1, updates, FL.0, FL.1, SamplingStrategy::Sequential);
        let v2 = m.training_seconds(CpuVersion::V2, updates, FL.0, FL.1, SamplingStrategy::Sequential);
        assert!(v2 < v1 / 3.0, "V2 {v2}s should far outrun V1 {v1}s on FL");
    }

    #[test]
    fn v1_close_to_v2_on_taxi() {
        let m = CpuModel::xeon_4110();
        let updates = 10_000_000_000;
        let v1 = m.training_seconds(CpuVersion::V1, updates, TAXI.0, TAXI.1, SamplingStrategy::Sequential);
        let v2 = m.training_seconds(CpuVersion::V2, updates, TAXI.0, TAXI.1, SamplingStrategy::Sequential);
        assert!(v1 / v2 < 1.5, "taxi V1 {v1}s vs V2 {v2}s");
    }

    #[test]
    fn time_scales_linearly_in_updates() {
        let m = CpuModel::xeon_4110();
        let a = m.training_seconds(CpuVersion::V2, 1_000_000, FL.0, FL.1, SamplingStrategy::Sequential);
        let b = m.training_seconds(CpuVersion::V2, 2_000_000, FL.0, FL.1, SamplingStrategy::Sequential);
        assert!((b / a - 2.0).abs() < 0.01);
    }

    #[test]
    fn multi_agent_scales_with_agents() {
        let m = CpuModel::xeon_4110();
        let t1000 = m.multi_agent_seconds(1_000, 20_000_000, 4);
        let t2000 = m.multi_agent_seconds(2_000, 20_000_000, 4);
        assert!((t2000 / t1000 - 2.0).abs() < 1e-9);
        // Magnitude vs the paper's measured 996.52 s for 1,000 agents ×
        // 10,000 transitions × 2,000 episodes: within ±30%.
        let paper_like = m.multi_agent_seconds(1_000, 10_000 * 2_000, 4);
        assert!(
            (700.0..1_300.0).contains(&paper_like),
            "calibration drifted: {paper_like}"
        );
    }
}
