//! Multi-tenant training-service tests: fault isolation, lease
//! admission, cancellation, and per-tenant telemetry.
//!
//! The headline test runs 100+ concurrent jobs with mixed fault plans
//! over one shared fleet and diffs every tenant's Q-table byte-for-byte
//! against its solo run — one tenant's `FaultPlan` must never perturb
//! another tenant's results.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::resilience::ResilienceConfig;
use swiftrl::core::runner::PimRunner;
use swiftrl::core::service::{JobOutcome, JobRequest, JobStatus, ServiceError, TrainingService};
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::taxi::Taxi;
use swiftrl::env::ExperienceDataset;
use swiftrl::pim::config::{ExecTier, PimConfig};
use swiftrl::pim::faults::FaultPlan;
use swiftrl::pim::ExecutionEngine;
use swiftrl::telemetry::{render_deterministic, ServiceMetrics, ServiceTelemetry};

fn frozen_dataset(transitions: usize, seed: u32) -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, transitions, u64::from(seed))
}

fn taxi_dataset(transitions: usize, seed: u32) -> ExperienceDataset {
    let mut env = Taxi::new();
    collect_random(&mut env, transitions, u64::from(seed))
}

/// A small fleet for tests: 16 ranks of 4 DPUs, so single-rank jobs
/// multiplex heavily.
fn small_fleet() -> PimConfig {
    PimConfig::builder().dpus(64).dpus_per_rank(4).build()
}

fn cfg(dpus: usize, episodes: u32, seed: u32) -> RunConfig {
    RunConfig::paper_defaults()
        .with_dpus(dpus)
        .with_episodes(episodes)
        .with_tau(2)
        .with_seed(seed)
}

/// The tentpole correctness claim: 100+ jobs from different tenants —
/// different workloads, datasets, seeds, and fault plans (including
/// dead DPUs absorbed by degradation and transient faults absorbed by
/// retries) — run concurrently over one shared fleet, and every
/// tenant's final Q-table and time breakdown are bit-identical to the
/// same job run solo on a private platform.
#[test]
fn hundred_concurrent_tenants_match_their_solo_runs_bit_exactly() {
    let specs = [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
        WorkloadSpec::sarsa_seq_fp32(),
        WorkloadSpec::sarsa_seq_int32(),
    ];
    let service = TrainingService::new(small_fleet(), 8);

    let mut requests = Vec::new();
    for i in 0..104u32 {
        let spec = specs[(i % 4) as usize];
        let dpus = 2 + (i as usize % 3); // 2..=4 DPUs, single-rank jobs
        let transitions = 400 + 40 * (i as usize % 5);
        let dataset = if i % 2 == 0 {
            frozen_dataset(transitions, 100 + i)
        } else {
            taxi_dataset(transitions, 100 + i)
        };
        let (faults, resilience) = match i % 4 {
            // Clean tenant.
            0 => (FaultPlan::none(), ResilienceConfig::none()),
            // Transient faults, absorbed by retries.
            1 => (
                FaultPlan::seeded(u64::from(i)).with_dpu_fail_rate(0.25),
                ResilienceConfig::none().with_max_retries(8),
            ),
            // A DPU dead from its second launch, absorbed by
            // checkpointed degradation.
            2 => (
                FaultPlan::seeded(u64::from(i)).with_dead_dpus(vec![i as usize % dpus], 1),
                ResilienceConfig::none()
                    .with_max_retries(1)
                    .with_checkpoint_every(1)
                    .with_degrade(true),
            ),
            // Stragglers: timing-only faults.
            _ => (
                FaultPlan::seeded(u64::from(i)).with_stragglers(0.3, 2.0),
                ResilienceConfig::none(),
            ),
        };
        let request = JobRequest::new(format!("tenant-{i}"), spec, cfg(dpus, 8, i), dataset)
            .with_faults(faults)
            .with_resilience(resilience);
        requests.push(request);
    }

    // Submit everything up front so the queue really is concurrent,
    // then wait for all jobs.
    let handles: Vec<_> = requests
        .iter()
        .map(|r| service.submit(r.clone()).expect("admission"))
        .collect();

    let mut mismatches = Vec::new();
    for (request, handle) in requests.iter().zip(&handles) {
        let outcome = handle.wait();
        let JobOutcome::Completed(service_out) = outcome else {
            panic!("job {} did not complete: {:?}", handle.id(), outcome);
        };

        // The same job, solo, on a private platform with the identical
        // per-job configuration the service derived.
        let solo_out = PimRunner::with_platform(
            request.spec,
            request.cfg,
            service.job_platform(request),
        )
        .expect("solo runner")
        .with_resilience(request.resilience)
        .run(&request.dataset)
        .expect("solo run");

        // Byte-for-byte Q-table equality, exact breakdown equality.
        if service_out.q_table != solo_out.q_table
            || service_out.breakdown != solo_out.breakdown
            || service_out.resilience != solo_out.resilience
        {
            mismatches.push(handle.tenant().to_string());
        }
    }
    assert!(
        mismatches.is_empty(),
        "tenants diverged from their solo runs: {mismatches:?}"
    );

    // Sanity: the sweep actually exercised faults and resilience.
    let faulted = handles
        .iter()
        .filter(|h| h.metrics().faulted_launches > 0)
        .count();
    assert!(faulted > 20, "fault plans never fired; the test is vacuous");
}

/// Lease admission rejects overlapping pinned rank sets synchronously,
/// and malformed pins never reach the queue.
#[test]
fn lease_admission_rejects_overlapping_pins() {
    // One worker: the first (unpinned) job occupies it, so the pinned
    // jobs stay queued — their pins must still exclude each other.
    let service = TrainingService::new(small_fleet(), 1);

    let busy = service
        .submit(JobRequest::new(
            "busy",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(4, 8, 1),
            frozen_dataset(600, 1),
        ))
        .expect("unpinned job admitted");

    let pinned = service
        .submit(
            JobRequest::new(
                "pinned",
                WorkloadSpec::q_learning_seq_fp32(),
                cfg(4, 4, 2),
                frozen_dataset(400, 2),
            )
            .with_pinned_ranks(vec![0, 1]),
        )
        .expect("first pin accepted");

    // Overlap with a queued pin is rejected before queueing.
    let overlap = service.submit(
        JobRequest::new(
            "overlap",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(4, 4, 3),
            frozen_dataset(400, 3),
        )
        .with_pinned_ranks(vec![1, 2]),
    );
    assert_eq!(overlap.unwrap_err(), ServiceError::LeaseOverlap { rank: 1 });

    // Disjoint pins are fine.
    let disjoint = service
        .submit(
            JobRequest::new(
                "disjoint",
                WorkloadSpec::q_learning_seq_fp32(),
                cfg(4, 4, 4),
                frozen_dataset(400, 4),
            )
            .with_pinned_ranks(vec![2, 3]),
        )
        .expect("disjoint pin accepted");

    // Malformed pins: out-of-range rank, duplicate rank, and a pin too
    // small for the job's DPU count.
    for (ranks, dpus) in [(vec![99], 4), (vec![0, 0], 4), (vec![0], 5)] {
        let err = service
            .submit(
                JobRequest::new(
                    "bad-pin",
                    WorkloadSpec::q_learning_seq_fp32(),
                    cfg(dpus, 4, 5),
                    frozen_dataset(400, 5),
                )
                .with_pinned_ranks(ranks),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::BadPin(_)), "{err}");
    }

    // A job larger than the whole fleet is rejected outright.
    let err = service
        .submit(JobRequest::new(
            "giant",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(65, 4, 6),
            frozen_dataset(400, 6),
        ))
        .unwrap_err();
    assert!(matches!(err, ServiceError::TooLarge { .. }));

    for h in [busy, pinned, disjoint] {
        assert!(h.wait().completed().is_some(), "{} failed", h.tenant());
    }

    // Completed pins release their reservation: the once-contested
    // ranks are pinnable again.
    let repinned = service
        .submit(
            JobRequest::new(
                "repinned",
                WorkloadSpec::q_learning_seq_fp32(),
                cfg(4, 4, 7),
                frozen_dataset(400, 7),
            )
            .with_pinned_ranks(vec![0, 1]),
        )
        .expect("released pin is reusable");
    assert!(repinned.wait().completed().is_some());
}

/// Cancelling a running job stops it at a round boundary and frees its
/// lease; the fleet stays fully reusable afterwards. Cancelling a
/// queued job discards it before it ever touches the fleet.
#[test]
fn cancellation_mid_round_leaves_the_fleet_reusable() {
    let service = TrainingService::new(small_fleet(), 2);

    // A job far too long to finish on its own: cancellation is the
    // only way it ends.
    let marathon = service
        .submit(JobRequest::new(
            "marathon",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(4, 200_000, 1),
            frozen_dataset(800, 1),
        ))
        .expect("admitted");

    // Wait until it is actually running (holding its lease), then
    // cancel mid-run.
    while marathon.status() != JobStatus::Running {
        std::thread::yield_now();
    }
    marathon.cancel();
    let outcome = marathon.wait();
    assert!(outcome.is_cancelled(), "expected cancellation: {outcome:?}");
    // The cancelled job did real work before stopping.
    assert!(marathon.metrics().launches > 0);

    // Cancel a queued job before any worker picks it up: submit enough
    // work to keep both workers busy, cancel the last submission
    // immediately.
    let fillers: Vec<_> = (0..2)
        .map(|i| {
            service
                .submit(JobRequest::new(
                    format!("filler-{i}"),
                    WorkloadSpec::q_learning_seq_fp32(),
                    cfg(4, 8, 10 + i),
                    frozen_dataset(600, 10 + i),
                ))
                .expect("admitted")
        })
        .collect();
    let queued = service
        .submit(JobRequest::new(
            "queued-cancel",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(4, 8, 20),
            frozen_dataset(600, 20),
        ))
        .expect("admitted");
    queued.cancel();
    assert!(queued.wait().is_cancelled());

    for f in fillers {
        assert!(f.wait().completed().is_some());
    }

    // The whole fleet is allocatable again: a job spanning every rank
    // completes.
    let full = service
        .submit(JobRequest::new(
            "full-fleet",
            WorkloadSpec::q_learning_seq_int32(),
            cfg(64, 4, 30),
            frozen_dataset(1_000, 30),
        ))
        .expect("full-fleet job admitted");
    assert!(full.wait().completed().is_some());
}

/// Cancelling a batched-tier job works exactly like cancelling a
/// per-intrinsic one: the `CancelToken` is checked at round boundaries
/// regardless of how the launch between them executed, so a marathon
/// batched job stops mid-run, reports real work, and frees its lease.
#[test]
fn batched_job_cancellation_mid_round_frees_the_lease() {
    let service = TrainingService::new(small_fleet(), 1);
    let marathon = service
        .submit(
            JobRequest::new(
                "batched-marathon",
                WorkloadSpec::q_learning_seq_fp32(),
                cfg(4, 200_000, 1),
                frozen_dataset(800, 1),
            )
            .with_exec_tier(ExecTier::Batched),
        )
        .expect("admitted");
    while marathon.status() != JobStatus::Running {
        std::thread::yield_now();
    }
    marathon.cancel();
    let outcome = marathon.wait();
    assert!(outcome.is_cancelled(), "expected cancellation: {outcome:?}");
    assert!(marathon.metrics().launches > 0);

    // The lease is free: a follow-up batched job completes.
    let follow_up = service
        .submit(
            JobRequest::new(
                "follow-up",
                WorkloadSpec::q_learning_seq_int32(),
                cfg(4, 8, 2),
                frozen_dataset(600, 2),
            )
            .with_exec_tier(ExecTier::Batched),
        )
        .expect("admitted");
    assert!(follow_up.wait().completed().is_some());
}

/// Execution tiers are a per-tenant choice: a batched-tier job running
/// next to a reference-tier tenant on the same shared fleet leaves both
/// bit-identical to their solo runs — the tier changes host wall-clock
/// only, never a simulated observable, even across tenants.
#[test]
fn batched_tenant_next_to_reference_tenant_matches_solo_runs() {
    let service = TrainingService::new(small_fleet(), 2);
    let requests = [
        JobRequest::new(
            "batched-tenant",
            WorkloadSpec::sarsa_seq_fp32(),
            cfg(4, 8, 1),
            frozen_dataset(800, 1),
        )
        .with_exec_tier(ExecTier::Batched),
        JobRequest::new(
            "reference-tenant",
            WorkloadSpec::q_learning_seq_int32(),
            cfg(4, 8, 2),
            taxi_dataset(800, 2),
        )
        .with_exec_tier(ExecTier::Reference),
    ];
    let handles: Vec<_> = requests
        .iter()
        .map(|r| service.submit(r.clone()).expect("admission"))
        .collect();
    for (request, handle) in requests.iter().zip(&handles) {
        let outcome = handle.wait();
        let JobOutcome::Completed(service_out) = outcome else {
            panic!("job {} did not complete: {:?}", handle.id(), outcome);
        };
        // The solo platform carries the same per-job tier override.
        let platform = service.job_platform(request);
        assert_eq!(
            platform.cost.arith_tier,
            request.exec_tier.expect("tier set"),
            "job_platform must carry the per-job tier override"
        );
        let solo_out = PimRunner::with_platform(request.spec, request.cfg, platform)
            .expect("solo runner")
            .run(&request.dataset)
            .expect("solo run");
        assert_eq!(
            service_out.q_table, solo_out.q_table,
            "{}: in-service Q-table diverged from solo run",
            handle.tenant()
        );
        assert_eq!(
            service_out.breakdown, solo_out.breakdown,
            "{}: in-service breakdown diverged from solo run",
            handle.tenant()
        );
    }
}

/// Every tenant's telemetry sink contains only its own events: fault
/// and resilience counters from a faulty neighbour never leak into a
/// clean tenant's metrics, and each tenant's sync rounds match its own
/// schedule.
#[test]
fn per_tenant_metrics_are_isolated() {
    let service = TrainingService::new(small_fleet(), 4);

    let clean = service
        .submit(JobRequest::new(
            "clean",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(4, 8, 1),
            frozen_dataset(800, 1),
        ))
        .expect("admitted");
    let faulty = service
        .submit(
            JobRequest::new(
                "faulty",
                WorkloadSpec::q_learning_seq_fp32(),
                cfg(4, 8, 2),
                frozen_dataset(800, 2),
            )
            .with_faults(FaultPlan::seeded(3).with_dead_dpus(vec![1], 1))
            .with_resilience(
                ResilienceConfig::none()
                    .with_max_retries(1)
                    .with_checkpoint_every(1)
                    .with_degrade(true),
            ),
        )
        .expect("admitted");

    let clean_out = clean.wait().completed().cloned().expect("clean completes");
    let faulty_out = faulty.wait().completed().cloned().expect("faulty recovers");

    let clean_metrics = clean.metrics();
    let faulty_metrics = faulty.metrics();
    assert_eq!(clean_metrics.label, "clean/job-0");
    assert_eq!(faulty_metrics.label, "faulty/job-1");

    // The faulty tenant's story shows up in its own metrics...
    assert!(faulty_out.resilience.faults_seen > 0);
    assert!(faulty_metrics.faulted_launches > 0);
    assert_eq!(faulty_metrics.retries, faulty_out.resilience.retries);
    assert_eq!(faulty_metrics.rollbacks, faulty_out.resilience.rollbacks);
    assert_eq!(
        faulty_metrics.degraded_dpus as usize,
        faulty_out.resilience.degraded_dpus.len()
    );

    // ...and leaves no trace in the clean tenant's.
    assert!(clean_out.resilience.is_clean());
    assert_eq!(clean_metrics.faulted_launches, 0);
    assert_eq!(clean_metrics.retries, 0);
    assert_eq!(clean_metrics.rollbacks, 0);
    assert_eq!(clean_metrics.degraded_dpus, 0);
    assert_eq!(clean_metrics.faulted_dpu_events, 0);

    // Each tenant sees exactly its own schedule: 8 episodes at τ=2 is
    // 4 sync rounds and 4 launches — nothing more, nothing less.
    assert_eq!(clean_metrics.sync_rounds, u64::from(clean_out.comm_rounds));
    assert_eq!(clean_metrics.launches, u64::from(clean_out.comm_rounds));
}

/// Submissions after shutdown are rejected; jobs already queued still
/// drain to a terminal state.
#[test]
fn shutdown_drains_and_rejects_new_jobs() {
    let mut service = TrainingService::new(small_fleet(), 2);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(JobRequest::new(
                    format!("drain-{i}"),
                    WorkloadSpec::q_learning_seq_fp32(),
                    cfg(2, 4, i),
                    frozen_dataset(300, i),
                ))
                .expect("admitted")
        })
        .collect();
    service.shutdown();
    for h in &handles {
        assert!(h.wait().completed().is_some(), "{} failed", h.tenant());
    }
    let err = service
        .submit(JobRequest::new(
            "late",
            WorkloadSpec::q_learning_seq_fp32(),
            cfg(2, 4, 99),
            frozen_dataset(300, 99),
        ))
        .unwrap_err();
    assert_eq!(err, ServiceError::ShuttingDown);
}

/// The mixed-fault tenant batch used by the observability tests: clean,
/// transient-fault, dead-DPU (degradation) and straggler tenants, as in
/// the headline isolation test but smaller episodes.
fn observability_requests(jobs: u32) -> Vec<JobRequest> {
    let specs = [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
        WorkloadSpec::sarsa_seq_fp32(),
        WorkloadSpec::sarsa_seq_int32(),
    ];
    (0..jobs)
        .map(|i| {
            let spec = specs[(i % 4) as usize];
            let dpus = 2 + (i as usize % 3);
            let transitions = 300 + 30 * (i as usize % 5);
            let dataset = if i % 2 == 0 {
                frozen_dataset(transitions, 500 + i)
            } else {
                taxi_dataset(transitions, 500 + i)
            };
            let (faults, resilience) = match i % 4 {
                1 => (
                    FaultPlan::seeded(u64::from(i)).with_dpu_fail_rate(0.25),
                    ResilienceConfig::none().with_max_retries(8),
                ),
                2 => (
                    FaultPlan::seeded(u64::from(i)).with_dead_dpus(vec![i as usize % dpus], 1),
                    ResilienceConfig::none()
                        .with_max_retries(1)
                        .with_checkpoint_every(1)
                        .with_degrade(true),
                ),
                _ => (FaultPlan::none(), ResilienceConfig::none()),
            };
            JobRequest::new(format!("tenant-{i}"), spec, cfg(dpus, 6, i), dataset)
                .with_faults(faults)
                .with_resilience(resilience)
        })
        .collect()
}

/// The observability determinism contract (DESIGN.md §15): the
/// deterministic projection of the service-event stream — lifecycle
/// events keyed by the logical clock, occupancy dropped, cancelled
/// jobs' sync rounds dropped — renders byte-identically across the
/// serial, threaded, and work-stealing engines *and* across worker
/// counts, for a 100-tenant mixed-fault batch that includes dead-DPU
/// tenants and a job cancelled mid-round.
#[test]
fn deterministic_service_stream_is_byte_identical_across_engines() {
    let requests = observability_requests(100);
    let marathon = JobRequest::new(
        "marathon",
        WorkloadSpec::q_learning_seq_fp32(),
        cfg(4, 200_000, 7),
        frozen_dataset(600, 7),
    );

    let mut rendered: Vec<(String, String)> = Vec::new();
    for (engine, workers, tag) in [
        (ExecutionEngine::Serial, 8, "serial"),
        (ExecutionEngine::Threaded { workers: 3 }, 5, "threaded"),
        (ExecutionEngine::WorkStealing { workers: 3 }, 3, "stealing"),
    ] {
        let fleet = PimConfig::builder()
            .dpus(64)
            .dpus_per_rank(4)
            .engine(engine)
            .build();
        let service =
            TrainingService::with_observability(fleet, workers, ServiceTelemetry::deterministic());
        let handles: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r.clone()).expect("admission"))
            .collect();
        // One tenant is cancelled mid-round: wait until it is running
        // (so its admission is deterministic), then cancel. How many
        // rounds it completed first is a race the projection drops.
        let cancelled = service.submit(marathon.clone()).expect("admission");
        while cancelled.status() != JobStatus::Running {
            std::thread::yield_now();
        }
        cancelled.cancel();
        assert!(cancelled.wait().is_cancelled());
        for handle in &handles {
            assert!(
                handle.wait().completed().is_some(),
                "{tag}: job {} did not complete",
                handle.id()
            );
        }
        rendered.push((
            tag.to_string(),
            render_deterministic(&service.service_telemetry().records()),
        ));
    }

    let (base_tag, baseline) = &rendered[0];
    assert!(
        baseline.contains("\"schema\": \"swiftrl-service-events-v1\""),
        "rendered stream must carry the schema tag"
    );
    // Every lifecycle phase of the fixture appears in the projection.
    for needle in ["job_submitted", "job_admitted", "sync_round", "job_completed", "job_cancelled"]
    {
        assert!(baseline.contains(needle), "projection lost {needle} events");
    }
    for (tag, stream) in &rendered[1..] {
        assert_eq!(
            stream, baseline,
            "deterministic stream diverged between {base_tag} and {tag} engines"
        );
    }
}

/// The service metrics registry is an exact fold of the event stream:
/// its counters reconcile with the per-tenant metrics snapshots and
/// outcome totals, and the Prometheus exposition carries the same
/// numbers.
#[test]
fn service_metrics_reconcile_with_per_tenant_totals() {
    let requests = observability_requests(16);
    let service = TrainingService::with_observability(
        small_fleet(),
        4,
        ServiceTelemetry::enabled(),
    );
    let handles: Vec<_> = requests
        .iter()
        .map(|r| service.submit(r.clone()).expect("admission"))
        .collect();
    let mut kernel_seconds = 0.0_f64;
    for handle in &handles {
        let outcome = handle.wait();
        let out = outcome.completed().expect("job completes");
        kernel_seconds += out.breakdown.pim_kernel_s;
    }

    let records = service.service_telemetry().records();
    let registry = ServiceMetrics::from_records(&records);

    assert_eq!(registry.jobs_submitted, 16);
    assert_eq!(registry.jobs_admitted, 16);
    assert_eq!(registry.jobs_completed, 16);
    assert_eq!(registry.jobs_cancelled, 0);
    assert_eq!(registry.jobs_failed, 0);

    // Counter totals match the sum of every tenant's private snapshot.
    let mut launches = 0u64;
    let mut faulted = 0u64;
    let mut retries = 0u64;
    let mut rollbacks = 0u64;
    let mut degraded = 0u64;
    let mut sync_rounds = 0u64;
    for handle in &handles {
        let m = handle.metrics();
        launches += m.launches;
        faulted += m.faulted_launches;
        retries += m.retries;
        rollbacks += m.rollbacks;
        degraded += m.degraded_dpus;
        sync_rounds += m.sync_rounds;
    }
    assert_eq!(registry.launches, launches);
    assert_eq!(registry.faulted_launches, faulted);
    assert_eq!(registry.retries, retries);
    assert_eq!(registry.rollbacks, rollbacks);
    assert_eq!(registry.degraded_dpus, degraded);
    assert_eq!(registry.sync_rounds, sync_rounds);
    assert!(faulted > 0, "fault plans never fired; reconciliation is vacuous");
    assert!(
        (registry.kernel_seconds - kernel_seconds).abs() < 1e-9,
        "kernel seconds diverged: registry {} vs outcomes {kernel_seconds}",
        registry.kernel_seconds
    );

    // The latency histograms saw every job once.
    assert_eq!(registry.admission_wait_s.count(), 16);
    assert_eq!(registry.run_duration_s.count(), 16);
    assert_eq!(registry.launch_cycles.count(), launches);

    // The exposition carries the same totals.
    let prom = registry.to_prometheus();
    for line in [
        "swiftrl_service_jobs_completed_total 16".to_string(),
        format!("swiftrl_service_launches_total {launches}"),
        format!("swiftrl_service_retries_total {retries}"),
    ] {
        assert!(prom.contains(&line), "exposition missing `{line}`:\n{prom}");
    }
}

/// Observability off is the default and costs nothing: a service built
/// with [`TrainingService::new`] records no service events, and its
/// tenants' simulated results are byte-identical to an observed run —
/// the observer never touches a simulated observable.
#[test]
fn disabled_observability_records_nothing_and_changes_no_observable() {
    let requests = observability_requests(8);

    let run = |service: &TrainingService| {
        let handles: Vec<_> = requests
            .iter()
            .map(|r| service.submit(r.clone()).expect("admission"))
            .collect();
        handles
            .iter()
            .map(|h| h.wait().completed().cloned().expect("job completes"))
            .collect::<Vec<_>>()
    };

    let plain = TrainingService::new(small_fleet(), 4);
    let plain_outs = run(&plain);
    assert!(
        plain.service_telemetry().records().is_empty(),
        "a default service must record no service events"
    );

    let observed =
        TrainingService::with_observability(small_fleet(), 4, ServiceTelemetry::enabled());
    let observed_outs = run(&observed);
    assert!(
        !observed.service_telemetry().records().is_empty(),
        "the observed run recorded nothing; the comparison is vacuous"
    );

    for (i, (a, b)) in plain_outs.iter().zip(&observed_outs).enumerate() {
        assert_eq!(a.q_table, b.q_table, "job {i}: observer changed the Q-table");
        assert_eq!(a.breakdown, b.breakdown, "job {i}: observer changed timing");
        assert_eq!(a.resilience, b.resilience, "job {i}: observer changed resilience");
    }
}
