//! Failure-injection tests: the system reports errors instead of
//! silently corrupting state when resources are exceeded or inputs are
//! malformed.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::pim::config::PimConfig;
use swiftrl::pim::host::{PimError, PimSystem};
use swiftrl::pim::kernel::{DpuContext, Kernel, KernelError};
use swiftrl::pim::memory::MemoryError;

#[test]
fn chunk_larger_than_mram_is_rejected() {
    let mut env = FrozenLake::slippery_4x4();
    // 4,000 records × 16 B = 64 KB of transitions per DPU, but the bank
    // below only holds 16 KB total (header + Q-table + records).
    let dataset = collect_random(&mut env, 4_000, 1);
    let platform = PimConfig::builder().dpus(1).mram_bytes(16 << 10).build();
    let runner = PimRunner::with_platform(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults().with_dpus(1).with_episodes(2).with_tau(2),
        platform,
    )
    .unwrap();
    match runner.run(&dataset) {
        Err(PimError::Memory(_)) => {}
        other => panic!("expected an MRAM capacity error, got {other:?}"),
    }
}

#[test]
fn oversized_allocation_is_rejected() {
    let mut system = PimSystem::new(PimConfig::builder().dpus(100).build());
    assert!(matches!(
        system.alloc(101),
        Err(PimError::Alloc {
            requested: 101,
            available: 100
        })
    ));
    // Partial allocations reduce the pool.
    let set = system.alloc(60).unwrap();
    assert!(system.alloc(41).is_err());
    system.free(set);
    assert!(system.alloc(100).is_ok());
}

#[test]
fn q_table_larger_than_wram_faults_in_kernel() {
    // A synthetic environment with a Q-table bigger than the 64-KB WRAM:
    // 10,000 states × 4 actions × 4 B = 160 KB.
    let mut d = swiftrl::env::ExperienceDataset::new("huge", 10_000, 4);
    d.extend([swiftrl::env::Transition {
        state: swiftrl::env::State(0),
        action: swiftrl::env::Action(0),
        reward: 0.0,
        next_state: swiftrl::env::State(1),
        done: false,
    }]);
    let out = PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults().with_dpus(1).with_episodes(1).with_tau(1),
    )
    .unwrap()
    .run(&d);
    match out {
        Err(PimError::Kernel { .. }) => {}
        other => panic!("expected a WRAM kernel fault, got {other:?}"),
    }
}

#[test]
fn misaligned_dma_faults_the_launch() {
    // The DMA engine moves data in 8-byte granules; a kernel that asks
    // for a 4-byte transfer at offset 3 must fault before any cycles or
    // bytes are charged, and the fault must carry the Misaligned cause.
    struct MisalignedKernel;
    impl Kernel for MisalignedKernel {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            ctx.mram_write(3, &[0u8; 4])?;
            Ok(())
        }
    }

    let mut system = PimSystem::new(PimConfig::builder().dpus(1).build());
    let mut set = system.alloc(1).unwrap();
    set.load_program();
    match set.launch(&MisalignedKernel) {
        Err(PimError::Kernel {
            dpu: 0,
            error: KernelError::Memory(MemoryError::Misaligned { offset, len, granule, .. }),
        }) => {
            assert_eq!((offset, len, granule), (3, 4, 8));
        }
        other => panic!("expected a Misaligned kernel fault, got {other:?}"),
    }
    // The faulted launch charged no kernel time.
    assert_eq!(set.stats().kernel_seconds, 0.0);
}

#[test]
fn mismatched_tau_is_a_typed_error_before_any_work() {
    // An indivisible schedule is rejected as a typed error both from the
    // config query and from runner construction — no work is attempted
    // and nothing panics.
    let cfg = RunConfig::paper_defaults().with_episodes(100).with_tau(33);
    match cfg.comm_rounds() {
        Err(PimError::BadArgument(msg)) => assert!(msg.contains("divisible"), "{msg}"),
        other => panic!("expected BadArgument, got {other:?}"),
    }
    match PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), cfg) {
        Err(PimError::BadArgument(msg)) => assert!(msg.contains("divisible"), "{msg}"),
        other => panic!("expected BadArgument from construction, got {other:?}"),
    }
}

#[test]
fn zero_tau_is_a_typed_error() {
    let cfg = RunConfig::paper_defaults().with_tau(0);
    assert!(matches!(cfg.comm_rounds(), Err(PimError::BadArgument(_))));
}
