//! Failure-injection tests: the system reports errors instead of
//! silently corrupting state when resources are exceeded or inputs are
//! malformed.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::pim::config::PimConfig;
use swiftrl::pim::faults::FaultPlan;
use swiftrl::pim::host::{PimError, PimSystem};
use swiftrl::pim::kernel::{DpuContext, Kernel, KernelError};
use swiftrl::pim::memory::MemoryError;
use swiftrl::pim::sanitize::SanitizeLevel;

#[test]
fn chunk_larger_than_mram_is_rejected() {
    let mut env = FrozenLake::slippery_4x4();
    // 4,000 records × 16 B = 64 KB of transitions per DPU, but the bank
    // below only holds 16 KB total (header + Q-table + records).
    let dataset = collect_random(&mut env, 4_000, 1);
    let platform = PimConfig::builder().dpus(1).mram_bytes(16 << 10).build();
    let runner = PimRunner::with_platform(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults().with_dpus(1).with_episodes(2).with_tau(2),
        platform,
    )
    .unwrap();
    match runner.run(&dataset) {
        Err(PimError::Memory(_)) => {}
        other => panic!("expected an MRAM capacity error, got {other:?}"),
    }
}

#[test]
fn oversized_allocation_is_rejected() {
    let mut system = PimSystem::new(PimConfig::builder().dpus(100).build());
    assert!(matches!(
        system.alloc(101),
        Err(PimError::Alloc {
            requested: 101,
            available: 100
        })
    ));
    // Partial allocations reduce the pool.
    let set = system.alloc(60).unwrap();
    assert!(system.alloc(41).is_err());
    system.free(set);
    assert!(system.alloc(100).is_ok());
}

#[test]
fn q_table_larger_than_wram_faults_in_kernel() {
    // A synthetic environment with a Q-table bigger than the 64-KB WRAM:
    // 10,000 states × 4 actions × 4 B = 160 KB.
    let mut d = swiftrl::env::ExperienceDataset::new("huge", 10_000, 4);
    d.extend([swiftrl::env::Transition {
        state: swiftrl::env::State(0),
        action: swiftrl::env::Action(0),
        reward: 0.0,
        next_state: swiftrl::env::State(1),
        done: false,
    }]);
    let out = PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults().with_dpus(1).with_episodes(1).with_tau(1),
    )
    .unwrap()
    .run(&d);
    match out {
        Err(PimError::Kernel { .. }) => {}
        other => panic!("expected a WRAM kernel fault, got {other:?}"),
    }
}

#[test]
fn misaligned_dma_faults_the_launch() {
    // The DMA engine moves data in 8-byte granules; a kernel that asks
    // for a 4-byte transfer at offset 3 must fault before any cycles or
    // bytes are charged, and the fault must carry the Misaligned cause.
    struct MisalignedKernel;
    impl Kernel for MisalignedKernel {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            ctx.mram_write(3, &[0u8; 4])?;
            Ok(())
        }
    }

    let mut system = PimSystem::new(PimConfig::builder().dpus(1).build());
    let mut set = system.alloc(1).unwrap();
    set.load_program();
    match set.launch(&MisalignedKernel) {
        Err(PimError::Kernel {
            dpu: 0,
            error: KernelError::Memory(MemoryError::Misaligned { offset, len, granule, .. }),
        }) => {
            assert_eq!((offset, len, granule), (3, 4, 8));
        }
        other => panic!("expected a Misaligned kernel fault, got {other:?}"),
    }
    // The faulted launch charged no kernel time.
    assert_eq!(set.stats().kernel_seconds, 0.0);
}

#[test]
fn injected_fault_reports_the_dpu_and_refreshes_last_launch() {
    // One DPU (index 2 of 4) is configured dead; the launch must fault
    // with that index, and `last_launch` must describe *this* faulted
    // launch — survivors' cycles merged, the dead DPU listed — instead
    // of retaining the stats of a previous clean launch.
    struct DirtyWork;
    impl Kernel for DirtyWork {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            ctx.charge_alu(10);
            // Never written: one sanitizer finding per surviving DPU.
            let _ = ctx.wram_read_u32(256)?;
            Ok(())
        }
    }

    let mut system = PimSystem::new(
        PimConfig::builder()
            .dpus(4)
            .sanitize(SanitizeLevel::Full)
            .faults(FaultPlan::seeded(1).with_dead_dpus(vec![2], 1))
            .build(),
    );
    let mut set = system.alloc(4).unwrap();
    set.load_program();

    // Launch 0 is clean (the DPU dies from launch 1).
    let clean = set.launch(&DirtyWork).unwrap().clone();
    assert!(!clean.is_faulted());

    match set.launch(&DirtyWork) {
        Err(PimError::Kernel {
            dpu: 2,
            error: KernelError::Fault(msg),
        }) => assert!(msg.contains("injected fault"), "{msg}"),
        other => panic!("expected an injected fault on DPU 2, got {other:?}"),
    }

    let faulted = set.last_launch().clone();
    assert_eq!(faulted.faulted_dpus, vec![2]);
    assert!(faulted.is_faulted());
    assert_eq!(faulted.dpus, 4);
    // Survivor cycle counters are merged (3 DPUs × 10 ALU slots).
    assert_eq!(faulted.merged.alu_slots, 30);
    assert!(faulted.max_cycles > 0);
    // `sync` after a faulted async-style launch reports the same stats.
    assert!(set.sync().is_faulted());

    // Accounting: the faulted launch is kept out of the clean counters.
    assert_eq!(set.stats().launches, 1);
    assert_eq!(set.stats().faulted_launches, 1);
    assert!(set.stats().faulted_kernel_seconds > 0.0);

    // Sanitizer findings are still drained on the fault path: one
    // uninit-WRAM read per surviving DPU, for both launches.
    assert_eq!(set.sanitizer_report().findings.len(), 4 + 3);

    // The survivors remain usable after the fault.
    let after = set.launch_subset(&DirtyWork, &[0, 1, 3]).unwrap();
    assert!(!after.is_faulted());
    assert_eq!(after.dpus, 3);
}

#[test]
fn mismatched_tau_is_a_typed_error_before_any_work() {
    // An indivisible schedule is rejected as a typed error both from the
    // config query and from runner construction — no work is attempted
    // and nothing panics.
    let cfg = RunConfig::paper_defaults().with_episodes(100).with_tau(33);
    match cfg.comm_rounds() {
        Err(PimError::BadArgument(msg)) => assert!(msg.contains("divisible"), "{msg}"),
        other => panic!("expected BadArgument, got {other:?}"),
    }
    match PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), cfg) {
        Err(PimError::BadArgument(msg)) => assert!(msg.contains("divisible"), "{msg}"),
        other => panic!("expected BadArgument from construction, got {other:?}"),
    }
}

#[test]
fn zero_tau_is_a_typed_error() {
    let cfg = RunConfig::paper_defaults().with_tau(0);
    assert!(matches!(cfg.comm_rounds(), Err(PimError::BadArgument(_))));
}
