//! The two contracts of the telemetry layer (DESIGN.md §11):
//!
//! 1. **Engine invariance** — the event stream is recorded host-side
//!    after `DpuSet::launch_on`'s ordered merge, so the Serial and
//!    Threaded engines produce byte-identical streams (and therefore
//!    byte-identical trace/metrics artifacts), including under fault
//!    injection with retries, rollbacks and degradation in play.
//! 2. **Zero when off** — with the sink disabled (the default), no
//!    simulated observable changes: Q-table bits, time breakdowns and
//!    sanitizer reports are identical to a telemetry-enabled run across
//!    all 12 paper variants.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::resilience::ResilienceConfig;
use swiftrl::core::runner::{PimRunner, RunOutcome};
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;
use swiftrl::pim::config::PimConfig;
use swiftrl::pim::faults::FaultPlan;
use swiftrl::pim::ExecutionEngine;
use swiftrl::telemetry::{chrome_trace, Event, MetricsSnapshot, Telemetry};

fn dataset() -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, 2_000, 13)
}

fn cfg(dpus: usize) -> RunConfig {
    RunConfig::paper_defaults()
        .with_dpus(dpus)
        .with_episodes(4)
        .with_tau(2)
}

/// Runs one variant with an attached sink and returns the outcome plus
/// the recorded stream.
fn traced_run(
    spec: WorkloadSpec,
    run_cfg: RunConfig,
    engine: ExecutionEngine,
    faults: FaultPlan,
    resilience: ResilienceConfig,
) -> (RunOutcome, Vec<Event>) {
    let telemetry = Telemetry::enabled();
    let platform = PimConfig::builder()
        .dpus(run_cfg.dpus)
        .engine(engine)
        .faults(faults)
        .telemetry(telemetry.clone())
        .build();
    let out = PimRunner::with_platform(spec, run_cfg, platform)
        .unwrap()
        .with_resilience(resilience)
        .run(&dataset())
        .unwrap();
    (out, telemetry.events())
}

/// Serial and Threaded record identical event streams for every paper
/// variant — compared structurally *and* through both rendered
/// artifacts, so the byte-identity claim covers the exporters too.
#[test]
fn engines_emit_byte_identical_streams_across_all_variants() {
    for spec in WorkloadSpec::paper_variants() {
        let (_, serial) = traced_run(
            spec,
            cfg(6),
            ExecutionEngine::Serial,
            FaultPlan::none(),
            ResilienceConfig::none(),
        );
        let (_, threaded) = traced_run(
            spec,
            cfg(6),
            ExecutionEngine::Threaded { workers: 3 },
            FaultPlan::none(),
            ResilienceConfig::none(),
        );
        assert!(!serial.is_empty(), "{spec}: no events recorded");
        assert_eq!(serial, threaded, "{spec}: event streams diverged");
        assert_eq!(
            chrome_trace("run", &serial),
            chrome_trace("run", &threaded),
            "{spec}: rendered traces diverged"
        );
        assert_eq!(
            MetricsSnapshot::from_events("run", &serial).to_json().render(),
            MetricsSnapshot::from_events("run", &threaded).to_json().render(),
            "{spec}: rendered metrics diverged"
        );
    }
}

/// Engine invariance holds under fault injection too — transient faults
/// absorbed by retries (so the stream contains `TransferFault`/`Retry`
/// events) and a dead DPU absorbed by checkpoint rollback + degradation
/// (so it contains `Rollback`/`Degradation`).
#[test]
fn engines_emit_byte_identical_streams_under_faults() {
    let spec = WorkloadSpec::q_learning_seq_fp32();
    let run_cfg = RunConfig::paper_defaults()
        .with_dpus(4)
        .with_episodes(20)
        .with_tau(5);

    // Transient aborts, retried.
    let retry_faults = || FaultPlan::seeded(7).with_dpu_fail_rate(0.3);
    let retry_policy = ResilienceConfig::none().with_max_retries(8);
    let (out_s, serial) = traced_run(
        spec,
        run_cfg,
        ExecutionEngine::Serial,
        retry_faults(),
        retry_policy,
    );
    let (_, threaded) = traced_run(
        spec,
        run_cfg,
        ExecutionEngine::Threaded { workers: 3 },
        retry_faults(),
        retry_policy,
    );
    assert!(out_s.resilience.retries > 0, "faults never fired; vacuous");
    assert!(serial.iter().any(|e| matches!(e, Event::Retry { .. })));
    assert!(serial
        .iter()
        .any(|e| matches!(e, Event::KernelLaunch { faulted_dpus, .. } if !faulted_dpus.is_empty())));
    assert_eq!(serial, threaded, "faulted streams diverged");

    // A permanently dead DPU: rollback to checkpoint, then degrade.
    let dead_faults = || FaultPlan::seeded(9).with_dead_dpus(vec![1], 2);
    let dead_policy = ResilienceConfig::none()
        .with_checkpoint_every(1)
        .with_degrade(true);
    let (out_s, serial) = traced_run(
        spec,
        run_cfg,
        ExecutionEngine::Serial,
        dead_faults(),
        dead_policy,
    );
    let (_, threaded) = traced_run(
        spec,
        run_cfg,
        ExecutionEngine::Threaded { workers: 3 },
        dead_faults(),
        dead_policy,
    );
    assert_eq!(out_s.resilience.degraded_dpus, vec![1]);
    assert!(serial.iter().any(|e| matches!(e, Event::Rollback { .. })));
    assert!(serial.iter().any(
        |e| matches!(e, Event::Degradation { dead_dpus, survivors: 3 } if dead_dpus == &[1])
    ));
    assert_eq!(serial, threaded, "degraded streams diverged");
}

/// Telemetry off is a true zero: for all 12 variants the default
/// (disabled) runner and a telemetry-enabled runner produce identical
/// Q-table bits, breakdowns and sanitizer reports, while the enabled
/// sink actually recorded the run and a disabled handle stays empty.
#[test]
fn disabled_telemetry_changes_no_simulated_observable() {
    let d = dataset();
    for spec in WorkloadSpec::paper_variants() {
        let off = PimRunner::new(spec, cfg(6)).unwrap().run(&d).unwrap();

        let disabled = Telemetry::disabled();
        let enabled = Telemetry::enabled();
        let on = PimRunner::new(spec, cfg(6))
            .unwrap()
            .with_telemetry(enabled.clone())
            .run(&d)
            .unwrap();

        assert_eq!(off.q_table, on.q_table, "{spec}: Q-table bits diverged");
        assert_eq!(off.breakdown, on.breakdown, "{spec}: breakdowns diverged");
        assert_eq!(
            off.sanitizer.findings, on.sanitizer.findings,
            "{spec}: sanitizer reports diverged"
        );
        assert_eq!(off.comm_rounds, on.comm_rounds, "{spec}");
        assert!(disabled.is_empty() && !disabled.is_enabled());
        assert!(!enabled.is_empty(), "{spec}: enabled sink recorded nothing");
    }
}

/// The stream's structure matches the run's phases: program load first,
/// one clean launch and one sync round per communication round, and a
/// host aggregate closing every round (intermediate + final).
#[test]
fn event_stream_matches_run_phases() {
    let spec = WorkloadSpec::q_learning_seq_int32();
    let (out, events) = traced_run(
        spec,
        cfg(6),
        ExecutionEngine::Serial,
        FaultPlan::none(),
        ResilienceConfig::none(),
    );
    assert!(
        matches!(events[0], Event::ProgramLoad { dpus: 6, .. }),
        "first event should be the program load: {:?}",
        events[0]
    );
    let rounds = u64::from(out.comm_rounds);
    let snap = MetricsSnapshot::from_events("run", &events);
    assert_eq!(snap.launches, rounds);
    assert_eq!(snap.sync_rounds, rounds);
    assert_eq!(snap.aggregates.count, rounds);
    assert_eq!(snap.faulted_launches, 0);
    assert_eq!(snap.retries, 0);
    assert!(snap.kernel_seconds > 0.0);
    assert_eq!(snap.imbalance.len() as u64, rounds);
    // Simulated kernel time in the stream equals the breakdown's.
    assert!((snap.kernel_seconds - out.breakdown.pim_kernel_s).abs() < 1e-12);
}

/// Two identical runs render byte-identical artifacts end to end — the
/// property CI relies on when it validates committed traces.
#[test]
fn artifacts_are_deterministic_across_runs() {
    let spec = WorkloadSpec::sarsa_seq_fp32();
    let run = || {
        traced_run(
            spec,
            cfg(5),
            ExecutionEngine::Threaded { workers: 2 },
            FaultPlan::none(),
            ResilienceConfig::none(),
        )
        .1
    };
    let (a, b) = (run(), run());
    assert_eq!(chrome_trace("run", &a), chrome_trace("run", &b));
    assert_eq!(
        MetricsSnapshot::from_events("run", &a).to_json().render_pretty(),
        MetricsSnapshot::from_events("run", &b).to_json().render_pretty()
    );
}
