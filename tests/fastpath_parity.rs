//! Differential proof of the tiered execution contract (DESIGN.md §10,
//! §14): neither the fast tier nor the batched tier may ever change a bit
//! or a cycle. Every fast-path value function must be bit-identical to the
//! instrumented soft reference, and every closed-form tally function must
//! equal the reference's executed-op count — exhaustively over the
//! special-value lattice, property-tested over random operands,
//! cycle-for-cycle through `DpuContext` launches in both charging modes,
//! and end-to-end over all 12 paper variants under every execution
//! engine. The batched tier (one fused host sweep per launch, aggregate
//! cycle tallies) is additionally pinned at the host level — `LaunchStats`
//! and `SystemStats` identical to the reference — and under active fault
//! plans, where touched (dpu, launch) pairs fall back to the
//! per-intrinsic path.

use proptest::prelude::*;
use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::{PimRunner, RunOutcome};
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;
use swiftrl::pim::config::{ArithTier, EmulationCharging, PimConfig};
use swiftrl::pim::cost::OpTally;
use swiftrl::pim::host::PimSystem;
use swiftrl::pim::kernel::{DpuContext, Kernel, KernelError, F32};
use swiftrl::pim::stats::{LaunchStats, SystemStats};
use swiftrl::pim::{emul, fastpath, softfloat, ExecutionEngine};

/// Special-value lattice: signed zeros, units, infinities, NaN payloads,
/// the subnormal range boundaries, `f32::MAX`, assorted normals, and the
/// exact `f32 → i32` saturation boundary in both directions.
const F32_LATTICE: &[u32] = &[
    0x0000_0000, // +0
    0x8000_0000, // -0
    0x3F80_0000, // 1.0
    0xBF80_0000, // -1.0
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x7FC0_0000, // canonical quiet NaN
    0x7F80_0001, // signalling NaN payload
    0xFFC0_0001, // negative NaN with payload
    0x0000_0001, // smallest subnormal
    0x0020_0000, // mid subnormal
    0x007F_FFFF, // largest subnormal
    0x0080_0000, // smallest normal
    0x7F7F_FFFF, // f32::MAX
    0x3DCC_CCCD, // ~0.1 (inexact, exercises rounding)
    0x4048_F5C3, // ~3.14
    0xC2F6_E979, // ~-123.456
    0x3400_0000, // tiny normal (subnormal results under mul/div)
    0x4EFF_FFFF, // 2147483520.0, largest f32 below 2^31
    0x4F00_0000, // 2^31 exactly (saturates i32)
    0xCF00_0000, // -2^31 exactly (fits i32)
    0xCF00_0001, // first f32 below -2^31 (saturates)
];

const U32_LATTICE: &[u32] = &[
    0,
    1,
    2,
    3,
    7,
    255,
    256,
    9_500,
    65_535,
    0x0001_0000,
    0x7FFF_FFFF,
    0x8000_0000,
    0xFFFF_FFFE,
    u32::MAX,
];

const I32_LATTICE: &[i32] = &[
    0,
    1,
    -1,
    2,
    -7,
    255,
    -256,
    9_500,
    (1 << 26) - 1,
    1 << 26,
    (1 << 26) + 1,
    i32::MAX,
    i32::MIN,
    i32::MIN + 1,
];

/// Asserts every float op agrees between tiers — result bits AND tally —
/// for one operand pair.
#[allow(clippy::type_complexity)]
fn assert_float_pair(a: u32, b: u32) {
    let ops: &[(
        &str,
        fn(u32, u32, &mut OpTally) -> u32,
        fn(u32, u32) -> u32,
        fn(u32, u32) -> u64,
    )] = &[
        ("add", softfloat::f32_add, fastpath::f32_add, fastpath::f32_add_tally),
        ("sub", softfloat::f32_sub, fastpath::f32_sub, fastpath::f32_sub_tally),
        ("mul", softfloat::f32_mul, fastpath::f32_mul, fastpath::f32_mul_tally),
        ("div", softfloat::f32_div, fastpath::f32_div, fastpath::f32_div_tally),
        ("max", softfloat::f32_max, fastpath::f32_max, fastpath::f32_max_tally),
    ];
    for (name, soft, fast, fast_tally) in ops {
        let mut t = OpTally::new();
        let reference = soft(a, b, &mut t);
        assert_eq!(
            fast(a, b),
            reference,
            "{name}({a:#010x}, {b:#010x}): result bits diverged"
        );
        assert_eq!(
            fast_tally(a, b),
            t.count(),
            "{name}({a:#010x}, {b:#010x}): tally diverged"
        );
    }
    // Comparisons: gt and lt share one tally shape.
    let mut t = OpTally::new();
    let gt = softfloat::f32_gt(a, b, &mut t);
    assert_eq!(fastpath::f32_gt(a, b), gt, "gt({a:#010x}, {b:#010x})");
    assert_eq!(fastpath::f32_cmp_tally(a, b), t.count(), "gt tally({a:#010x}, {b:#010x})");
    let mut t = OpTally::new();
    let lt = softfloat::f32_lt(a, b, &mut t);
    assert_eq!(fastpath::f32_lt(a, b), lt, "lt({a:#010x}, {b:#010x})");
    assert_eq!(fastpath::f32_cmp_tally(a, b), t.count(), "lt tally({a:#010x}, {b:#010x})");
}

/// Asserts the unary float ops agree between tiers for one operand.
fn assert_float_unary(a: u32) {
    let mut t = OpTally::new();
    let neg = softfloat::f32_neg(a, &mut t);
    assert_eq!(fastpath::f32_neg(a), neg, "neg({a:#010x})");
    assert_eq!(fastpath::f32_neg_tally(a), t.count(), "neg tally({a:#010x})");
    let mut t = OpTally::new();
    let conv = softfloat::f32_to_i32(a, &mut t);
    assert_eq!(fastpath::f32_to_i32(a), conv, "f32_to_i32({a:#010x})");
    assert_eq!(
        fastpath::f32_to_i32_tally(a),
        t.count(),
        "f32_to_i32 tally({a:#010x})"
    );
}

/// Asserts every integer op agrees between tiers for one operand pair,
/// including the data-dependent early-exit divide costs (`n < d` returns
/// after the guard) and the leading-zeros-driven multiply costs.
fn assert_int_pair(a: u32, b: u32) {
    let mut t = OpTally::new();
    let wide = emul::umul32_wide(a, b, &mut t);
    assert_eq!(fastpath::umul32_wide(a, b), wide, "umul({a:#x}, {b:#x})");
    assert_eq!(fastpath::umul32_wide_tally(a, b), t.count(), "umul tally({a:#x}, {b:#x})");

    let (ia, ib) = (a as i32, b as i32);
    let mut t = OpTally::new();
    let iwide = emul::imul32_wide(ia, ib, &mut t);
    assert_eq!(fastpath::imul32_wide(ia, ib), iwide, "imul_wide({ia}, {ib})");
    assert_eq!(
        fastpath::imul32_wide_tally(ia, ib),
        t.count(),
        "imul_wide tally({ia}, {ib})"
    );

    let mut t = OpTally::new();
    let narrow = emul::imul32(ia, ib, &mut t);
    assert_eq!(fastpath::imul32(ia, ib), narrow, "imul32({ia}, {ib})");
    assert_eq!(fastpath::imul32_tally(ia, ib), t.count(), "imul32 tally({ia}, {ib})");

    if b != 0 {
        let mut t = OpTally::new();
        let qr = emul::udiv32(a, b, &mut t);
        assert_eq!(fastpath::udiv32(a, b), qr, "udiv32({a:#x}, {b:#x})");
        assert_eq!(fastpath::udiv32_tally(a, b), t.count(), "udiv32 tally({a:#x}, {b:#x})");

        let mut t = OpTally::new();
        let iqr = emul::idiv32(ia, ib, &mut t);
        assert_eq!(fastpath::idiv32(ia, ib), iqr, "idiv32({ia}, {ib})");
        assert_eq!(fastpath::idiv32_tally(ia, ib), t.count(), "idiv32 tally({ia}, {ib})");

        let n64 = ((a as u64) << 32) | b as u64;
        let mut t = OpTally::new();
        let qr64 = emul::udiv64(n64, b, &mut t);
        assert_eq!(fastpath::udiv64(n64, b), qr64, "udiv64({n64:#x}, {b:#x})");
        assert_eq!(
            fastpath::udiv64_tally(n64, b),
            t.count(),
            "udiv64 tally({n64:#x}, {b:#x})"
        );

        let i64n = n64 as i64;
        let mut t = OpTally::new();
        let q64 = emul::idiv64(i64n, ib, &mut t);
        assert_eq!(fastpath::idiv64(i64n, ib), q64, "idiv64({i64n}, {ib})");
        assert_eq!(
            fastpath::idiv64_tally(i64n, ib),
            t.count(),
            "idiv64 tally({i64n}, {ib})"
        );
    }
}

#[test]
fn float_ops_bit_and_tally_identical_on_the_lattice() {
    for &a in F32_LATTICE {
        assert_float_unary(a);
        for &b in F32_LATTICE {
            assert_float_pair(a, b);
        }
    }
}

#[test]
fn integer_ops_bit_and_tally_identical_on_the_lattice() {
    for &a in U32_LATTICE {
        for &b in U32_LATTICE {
            assert_int_pair(a, b);
        }
    }
    // The signed-divide overflow corner the hardware wraps through.
    let mut t = OpTally::new();
    assert_eq!(
        fastpath::idiv32(i32::MIN, -1),
        emul::idiv32(i32::MIN, -1, &mut t)
    );
    assert_eq!(fastpath::idiv32_tally(i32::MIN, -1), t.count());
}

#[test]
fn int_to_float_conversion_identical_on_the_lattice() {
    for &v in I32_LATTICE {
        let mut t = OpTally::new();
        let r = softfloat::i32_to_f32(v, &mut t);
        assert_eq!(fastpath::i32_to_f32(v), r, "i32_to_f32({v})");
        assert_eq!(fastpath::i32_to_f32_tally(v), t.count(), "i32_to_f32 tally({v})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any pair of raw bit patterns — including NaNs, infinities, and
    /// subnormals sampled by chance — agrees in bits and tally.
    #[test]
    fn random_float_operands_agree(a in any::<u32>(), b in any::<u32>()) {
        assert_float_pair(a, b);
        assert_float_unary(a);
    }

    /// Random integer operands agree, covering the data-dependent
    /// early-exit divide costs and popcount-driven multiply costs.
    #[test]
    fn random_integer_operands_agree(a in any::<u32>(), b in any::<u32>()) {
        assert_int_pair(a, b);
    }

    /// Random conversions agree, including magnitudes beyond 2^26 where
    /// the reference switches to its shift-right-sticky path.
    #[test]
    fn random_conversions_agree(v in any::<i32>()) {
        let mut t = OpTally::new();
        let r = softfloat::i32_to_f32(v, &mut t);
        prop_assert_eq!(fastpath::i32_to_f32(v), r);
        prop_assert_eq!(fastpath::i32_to_f32_tally(v), t.count());
    }
}

// ---------------------------------------------------------------------------
// Cycle parity through DpuContext: the charged intrinsics must produce
// identical CycleCounter values under either tier, in both charging modes.
// ---------------------------------------------------------------------------

/// Exercises every emulated intrinsic with LCG-generated operands plus
/// special-value constants, folding all results into an MRAM-visible
/// checksum so value divergence and charge divergence are both caught.
struct ArithStressKernel;
impl Kernel for ArithStressKernel {
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let mut state = 0x1234_5678u32 ^ ctx.dpu_id() as u32;
        let mut ichk = 0u32;
        let mut fchk = F32::ZERO;
        for _ in 0..64 {
            let a = ctx.lcg_next(&mut state);
            let b = ctx.lcg_next(&mut state);
            let d = (b | 1) as i32;
            ichk = ichk.wrapping_add(ctx.mul32(a as i32, b as i32) as u32);
            ichk = ichk.wrapping_add(ctx.mul_wide(a as i32, b as i32) as u32);
            ichk = ichk.wrapping_add(ctx.div32(a as i32, d) as u32);
            ichk = ichk.wrapping_add(ctx.div_wide(((a as u64) << 16) as i64, d) as u32);
            ichk = ichk.wrapping_add(ctx.lcg_below(&mut state, 1000));
            let fa = F32(a);
            let fb = F32(b);
            let prod = ctx.fmul(fa, fb);
            fchk = ctx.fadd(fchk, prod);
            let quot = ctx.fdiv(fa, F32(b | 1));
            fchk = ctx.fmax(fchk, quot);
            let diff = ctx.fsub(fa, fb);
            if ctx.fgt(diff, prod) {
                ichk = ichk.wrapping_add(1);
            }
            let conv = ctx.i32_to_f32(a as i32);
            ichk = ichk.wrapping_add(ctx.f32_to_i32(conv) as u32);
            // Special values: infinity and NaN propagation must charge
            // the same early-exit costs in both tiers.
            let inf_sum = ctx.fadd(F32(0x7F80_0000), fb);
            let nan_mul = ctx.fmul(F32(0x7FC0_0000), fa);
            ichk = ichk.wrapping_add(inf_sum.0).wrapping_add(nan_mul.0);
        }
        let word = ((ichk as u64) << 32) | fchk.0 as u64;
        ctx.mram_write(0, &word.to_le_bytes())?;
        Ok(())
    }
}

fn stress_outcome(
    tier: ArithTier,
    charging: EmulationCharging,
    engine: ExecutionEngine,
) -> (Vec<u8>, LaunchStats, SystemStats) {
    let mut platform = PimConfig::builder()
        .dpus(4)
        .mram_bytes(1 << 16)
        .engine(engine)
        .arith_tier(tier)
        .build();
    platform.cost.emulation_charging = charging;
    let mut sys = PimSystem::new(platform);
    let mut set = sys.alloc(4).unwrap();
    set.launch(&ArithStressKernel).unwrap();
    let mut checksums = vec![0u8; 8 * 4];
    set.gather_into(0, 8, &mut checksums).unwrap();
    (checksums, set.last_launch().clone(), set.stats().clone())
}

/// The tentpole guarantee at the platform level: for every charging mode
/// and engine, the fast tier's launch is indistinguishable from the
/// reference tier's — checksum bytes, per-class cycle counters,
/// max/min/mean cycles, and the full `SystemStats`.
#[test]
fn fast_tier_launches_are_bit_and_cycle_identical() {
    for charging in [EmulationCharging::Calibrated, EmulationCharging::Tally] {
        for engine in [
            ExecutionEngine::Serial,
            ExecutionEngine::Threaded { workers: 2 },
        ] {
            let (ref_bytes, ref_launch, ref_stats) =
                stress_outcome(ArithTier::Reference, charging, engine);
            let (fast_bytes, fast_launch, fast_stats) =
                stress_outcome(ArithTier::Fast, charging, engine);
            assert_eq!(
                ref_bytes, fast_bytes,
                "{charging:?}/{engine:?}: checksum bytes diverged between tiers"
            );
            assert_eq!(
                ref_launch, fast_launch,
                "{charging:?}/{engine:?}: launch statistics diverged between tiers"
            );
            assert_eq!(
                ref_stats, fast_stats,
                "{charging:?}/{engine:?}: system statistics diverged between tiers"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end: all 12 paper variants, both tiers, both engines.
// ---------------------------------------------------------------------------

fn dataset() -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, 2_000, 42)
}

fn run_tiered(
    spec: WorkloadSpec,
    cfg: RunConfig,
    tier: ArithTier,
    charging: EmulationCharging,
    engine: ExecutionEngine,
    data: &ExperienceDataset,
) -> RunOutcome {
    let mut platform = PimConfig::builder()
        .dpus(cfg.dpus)
        .engine(engine)
        .arith_tier(tier)
        .build();
    platform.cost.emulation_charging = charging;
    PimRunner::with_platform(spec, cfg, platform)
        .unwrap()
        .run(data)
        .unwrap()
}

/// All 12 paper variants produce byte-identical Q-tables and identical
/// cycle-derived time breakdowns under either arithmetic tier and either
/// execution engine.
#[test]
fn all_paper_variants_identical_across_tiers_and_engines() {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(2)
        .with_episodes(4)
        .with_tau(2);
    let data = dataset();
    let threaded = ExecutionEngine::Threaded { workers: 3 };
    for spec in WorkloadSpec::paper_variants() {
        let reference = run_tiered(
            spec,
            cfg,
            ArithTier::Reference,
            EmulationCharging::Calibrated,
            ExecutionEngine::Serial,
            &data,
        );
        for (tier, engine) in [
            (ArithTier::Fast, ExecutionEngine::Serial),
            (ArithTier::Reference, threaded),
            (ArithTier::Fast, threaded),
            (ArithTier::Batched, ExecutionEngine::Serial),
            (ArithTier::Batched, threaded),
            (ArithTier::Batched, ExecutionEngine::WorkStealing { workers: 3 }),
        ] {
            let other = run_tiered(
                spec,
                cfg,
                tier,
                EmulationCharging::Calibrated,
                engine,
                &data,
            );
            assert_eq!(
                reference.q_table.to_bytes(),
                other.q_table.to_bytes(),
                "{spec}: Q-table bytes diverged under {tier:?}/{engine:?}"
            );
            assert_eq!(
                reference.breakdown, other.breakdown,
                "{spec}: time breakdown diverged under {tier:?}/{engine:?}"
            );
            assert_eq!(reference.comm_rounds, other.comm_rounds, "{spec}");
        }
    }
}

/// Same end-to-end identity under tally charging, where the fast tier's
/// closed-form formulas replace the reference's executed-op counts.
#[test]
fn tally_charging_identical_across_tiers_end_to_end() {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(3)
        .with_episodes(4)
        .with_tau(2);
    let data = dataset();
    for spec in [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
    ] {
        let reference = run_tiered(
            spec,
            cfg,
            ArithTier::Reference,
            EmulationCharging::Tally,
            ExecutionEngine::Serial,
            &data,
        );
        for tier in [ArithTier::Fast, ArithTier::Batched] {
            let other = run_tiered(
                spec,
                cfg,
                tier,
                EmulationCharging::Tally,
                ExecutionEngine::Serial,
                &data,
            );
            assert_eq!(
                reference.q_table.to_bytes(),
                other.q_table.to_bytes(),
                "{spec}: Q-table bytes diverged under tally charging ({tier:?})"
            );
            assert_eq!(
                reference.breakdown, other.breakdown,
                "{spec}: time breakdown diverged under tally charging ({tier:?})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Batched tier: host-level LaunchStats/SystemStats identity, and identity
// under active fault plans (touched launches fall back per-intrinsic).
// ---------------------------------------------------------------------------

/// Stages a SwiftRL MRAM image by hand (headers + encoded transitions, as
/// the runner does), launches the training kernel twice so the episode
/// window advances through a header rewrite, and returns everything a
/// launch observably produces.
fn swiftrl_host_outcome(
    spec: WorkloadSpec,
    tier: ArithTier,
    charging: EmulationCharging,
    data: &ExperienceDataset,
) -> (Vec<u8>, LaunchStats, SystemStats) {
    use swiftrl::core::config::DataType;
    use swiftrl::core::kernels::SwiftRlKernel;
    use swiftrl::core::layout::{dpu_seed, sampling_kind, KernelHeader, Q_TABLE_OFFSET};
    use swiftrl::rl::policy::epsilon_threshold;
    use swiftrl::rl::sampling::SamplingStrategy;

    let cfg = RunConfig::paper_defaults();
    let scale = cfg.scale();
    let ndpus = 3usize;
    let mut platform = PimConfig::builder().dpus(ndpus).arith_tier(tier).build();
    platform.cost.emulation_charging = charging;
    let mut sys = PimSystem::new(platform);
    let mut set = sys.alloc(ndpus).unwrap();

    let (ns, na) = (data.num_states(), data.num_actions());
    let (alpha, gamma) = match spec.dtype {
        DataType::Fp32 => (cfg.alpha.to_bits(), cfg.gamma.to_bits()),
        DataType::Int32 => (
            scale.to_fixed(cfg.alpha) as u32,
            scale.to_fixed(cfg.gamma) as u32,
        ),
    };
    let (sampling, stride) = match spec.sampling {
        SamplingStrategy::Sequential => (sampling_kind::SEQ, 0),
        SamplingStrategy::Stride(k) => (sampling_kind::STR, k as u32),
        SamplingStrategy::Random => (sampling_kind::RAN, 0),
    };
    let chunk = data.len() / ndpus;
    for dpu in 0..ndpus {
        let header = KernelHeader {
            n_transitions: chunk as u32,
            num_states: ns as u32,
            num_actions: na as u32,
            episodes: 4,
            episode_base: 0,
            sampling,
            stride,
            seed: dpu_seed(cfg.seed, dpu),
            alpha,
            gamma,
            epsilon_threshold: epsilon_threshold(cfg.epsilon).min(u32::MAX as u64) as u32,
            scale: scale.factor() as u32,
        };
        set.copy_to(dpu, 0, &header.to_bytes()).unwrap();
        let range = dpu * chunk..(dpu + 1) * chunk;
        let chunk_bytes = match spec.dtype {
            DataType::Fp32 => data.encode_range_fp32(range),
            DataType::Int32 => data.encode_range_int32(range, scale.factor()),
        };
        set.copy_to(dpu, header.transitions_offset(), &chunk_bytes)
            .unwrap();
    }
    // Three tasklets exercise the chunk partitioning and the shared
    // WRAM Q-table; two launches exercise the continued episode window.
    let kernel = SwiftRlKernel::with_tasklets(spec, 3);
    set.launch(&kernel).unwrap();
    set.launch(&kernel).unwrap();
    let mut q = vec![0u8; ns * na * 4 * ndpus];
    set.gather_into(Q_TABLE_OFFSET, ns * na * 4, &mut q).unwrap();
    (q, set.last_launch().clone(), set.stats().clone())
}

/// The batched tier's aggregate cycle tallies are indistinguishable from
/// interpreting every intrinsic: for all 12 paper variants, in both
/// charging modes, a host-level launch produces identical per-DPU
/// Q-table bytes, identical `LaunchStats` (merged per-class counters,
/// max/min/mean cycles, modelled seconds), and identical `SystemStats`.
#[test]
fn batched_launch_stats_identical_at_host_level() {
    let data = dataset();
    for charging in [EmulationCharging::Calibrated, EmulationCharging::Tally] {
        for spec in WorkloadSpec::paper_variants() {
            let (ref_q, ref_launch, ref_stats) =
                swiftrl_host_outcome(spec, ArithTier::Reference, charging, &data);
            for tier in [ArithTier::Fast, ArithTier::Batched] {
                let (q, launch, stats) = swiftrl_host_outcome(spec, tier, charging, &data);
                assert_eq!(
                    ref_q, q,
                    "{spec}/{charging:?}: Q-table bytes diverged under {tier:?}"
                );
                assert_eq!(
                    ref_launch, launch,
                    "{spec}/{charging:?}: LaunchStats diverged under {tier:?}"
                );
                assert_eq!(
                    ref_stats, stats,
                    "{spec}/{charging:?}: SystemStats diverged under {tier:?}"
                );
            }
        }
    }
}

/// Identity holds under an active fault plan: bitflips and stragglers
/// force the touched (dpu, launch) pairs back onto the per-intrinsic
/// path, transient aborts ride the retry loop, and the run remains
/// bit- and cycle-identical across all three tiers and both engines.
#[test]
fn batched_identical_under_fault_plans() {
    use swiftrl::core::layout::Q_TABLE_OFFSET;
    use swiftrl::core::resilience::ResilienceConfig;
    use swiftrl::pim::{FaultPlan, MramRegion};

    let cfg = RunConfig::paper_defaults()
        .with_dpus(6)
        .with_episodes(4)
        .with_tau(2);
    let data = dataset();
    let faults = || {
        FaultPlan::seeded(21)
            .with_dpu_fail_rate(0.15)
            .with_stragglers(0.4, 3.0)
            .with_bitflips(
                0.4,
                MramRegion {
                    offset: Q_TABLE_OFFSET,
                    len: 256,
                },
            )
    };
    let run = |spec, tier, engine| {
        let mut platform = PimConfig::builder()
            .dpus(cfg.dpus)
            .engine(engine)
            .arith_tier(tier)
            .faults(faults())
            .build();
        platform.cost.emulation_charging = EmulationCharging::Calibrated;
        PimRunner::with_platform(spec, cfg, platform)
            .unwrap()
            .with_resilience(ResilienceConfig::none().with_max_retries(4))
            .run(&data)
            .unwrap()
    };
    for spec in WorkloadSpec::paper_variants() {
        let reference = run(spec, ArithTier::Reference, ExecutionEngine::Serial);
        for tier in [ArithTier::Fast, ArithTier::Batched] {
            for engine in [
                ExecutionEngine::Serial,
                ExecutionEngine::WorkStealing { workers: 3 },
            ] {
                let other = run(spec, tier, engine);
                assert_eq!(
                    reference.q_table.to_bytes(),
                    other.q_table.to_bytes(),
                    "{spec}: Q-table bytes diverged under faults ({tier:?}/{engine:?})"
                );
                assert_eq!(
                    reference.breakdown, other.breakdown,
                    "{spec}: time breakdown diverged under faults ({tier:?}/{engine:?})"
                );
                assert_eq!(
                    reference.resilience, other.resilience,
                    "{spec}: resilience stats diverged under faults ({tier:?}/{engine:?})"
                );
                assert_eq!(reference.comm_rounds, other.comm_rounds, "{spec}");
            }
        }
    }
}
