//! Runner-level tests of the tasklet-parallel extension.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::rl::eval::evaluate_greedy;

fn cfg(tasklets: usize) -> RunConfig {
    RunConfig::paper_defaults()
        .with_dpus(16)
        .with_episodes(100)
        .with_tau(50)
        .with_tasklets(tasklets)
}

#[test]
fn tasklets_cut_kernel_time_without_hurting_quality() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 40_000, 9);

    let one = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg(1))
        .unwrap()
        .run(&dataset)
        .unwrap();
    let eleven = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg(11))
        .unwrap()
        .run(&dataset)
        .unwrap();

    // ~11× kernel speedup at the pipeline-fill point.
    let speedup = one.breakdown.pim_kernel_s / eleven.breakdown.pim_kernel_s;
    assert!(
        (8.0..=11.5).contains(&speedup),
        "tasklet speedup {speedup:.2} outside the pipeline-fill band"
    );

    // Sub-chunked training still learns an equivalent policy.
    let q1 = evaluate_greedy(&mut env, &one.q_table, 500, 3).mean_reward;
    let q11 = evaluate_greedy(&mut env, &eleven.q_table, 500, 3).mean_reward;
    assert!(q1 > 0.5, "single-tasklet quality {q1:.3}");
    assert!(q11 > 0.5, "11-tasklet quality {q11:.3}");
}

#[test]
fn oversubscription_beyond_pipeline_fill_does_not_help() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 20_000, 4);
    let t11 = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg(11))
        .unwrap()
        .run(&dataset)
        .unwrap()
        .breakdown
        .pim_kernel_s;
    let t24 = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg(24))
        .unwrap()
        .run(&dataset)
        .unwrap()
        .breakdown
        .pim_kernel_s;
    assert!(
        t24 > t11 * 0.85,
        "beyond 11 tasklets the pipeline is saturated: {t11} -> {t24}"
    );
}
