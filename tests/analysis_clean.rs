//! The kernel-discipline analyzer must be self-clean: zero non-baselined
//! findings on the workspace's own sources — the same gate
//! `cargo run -p swiftrl-analysis` enforces from the command line — plus
//! fixture pins for every rule family and a fuzz harness for the lexer.

use std::path::Path;

use proptest::prelude::*;
use swiftrl_analysis::{
    analyze_workspace, check_file, find_workspace_root, scanner, Baseline, Finding,
};

fn rules_of(file: &str, src: &str) -> Vec<&'static str> {
    let mut r: Vec<&'static str> = check_file(Path::new(file), src)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    r.dedup();
    r
}

#[test]
fn workspace_has_no_new_kernel_discipline_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(
        analysis.files_scanned > 50,
        "suspiciously small scan: {} files",
        analysis.files_scanned
    );
    let baseline_text = std::fs::read_to_string(root.join("analysis-baseline.json"))
        .expect("checked-in analysis-baseline.json");
    let baseline = Baseline::parse(&baseline_text).expect("valid baseline");
    let (new_findings, baselined) = baseline.partition(&analysis.findings);
    let rendered: Vec<String> = new_findings.iter().map(|f| f.to_string()).collect();
    assert!(
        new_findings.is_empty(),
        "non-baselined kernel-discipline violations:\n{}",
        rendered.join("\n")
    );
    // The baseline is a short, curated allowlist (wall-clock measurement
    // in the runner, the service observer's marked non-deterministic
    // section) — if it quietly grows, someone is hiding findings.
    assert!(baselined <= 6, "baseline covers {baselined} findings");
}

#[test]
fn baseline_entries_all_still_match_a_finding() {
    // Stale baseline entries (the code they sanctioned is gone) must be
    // pruned, or the allowlist rots into a blanket suppression.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    let baseline_text = std::fs::read_to_string(root.join("analysis-baseline.json"))
        .expect("checked-in analysis-baseline.json");
    let baseline = Baseline::parse(&baseline_text).expect("valid baseline");
    let fresh = Baseline::from_findings(&analysis.findings);
    assert_eq!(
        baseline.render(),
        fresh.render(),
        "analysis-baseline.json is stale; regenerate with \
         `cargo run -p swiftrl-analysis -- --write-baseline`"
    );
}

/// K008 fixture: a kernel that emits telemetry is flagged; the identical
/// emission on the host side of the same file is not. Pins the rule the
/// workspace-clean gate above relies on to keep the event stream a
/// host-side-only observer.
#[test]
fn k008_fixture_flags_kernel_side_telemetry() {
    let src = r#"
        impl Kernel for Instrumented {
            fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                self.sink.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
                Ok(())
            }
        }
        fn host_side(telemetry: &Telemetry) {
            telemetry.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
        }
    "#;
    let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
    let k008: Vec<_> = findings.iter().filter(|f| f.rule == "K008").collect();
    assert_eq!(k008.len(), 1, "exactly the kernel-side emit: {findings:?}");
    assert!(k008[0].message.contains("emit"), "{k008:?}");
    assert_eq!(k008[0].line, 4, "{k008:?}");
}

/// The acceptance pin for the call-graph tentpole: a host float hidden in
/// a helper the kernel reaches through a plain call — no `DpuContext`
/// parameter, outside the impl block, invisible to the old region
/// heuristic — is flagged with a call-chain witness.
#[test]
fn transitive_violation_is_caught_through_a_helper() {
    let src = r#"
        impl Kernel for Sneaky {
            fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                let bits = decay_bits(3);
                Ok(())
            }
        }
        fn decay_bits(round: u32) -> u32 {
            (0.99f32).to_bits() >> round
        }
    "#;
    let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
    let k001: Vec<_> = findings.iter().filter(|f| f.rule == "K001").collect();
    assert_eq!(k001.len(), 1, "{findings:?}");
    assert!(
        k001[0]
            .message
            .contains("kernel-reachable via Sneaky::run → decay_bits"),
        "finding lacks its witness chain: {k001:?}"
    );
}

/// K011 fixture: a kernel reaching into the batched tier is flagged; the
/// advertising `Kernel::batch` method and host-side batch code are not.
/// Pins the seam the three-tier contract (DESIGN.md §14) rests on: the
/// fused sweep runs host-side from `Dpu::execute`, never from kernel code.
#[test]
fn k011_fixture_flags_kernel_side_batch_access() {
    let src = r#"
        impl Kernel for Fused {
            fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                self.run_batched(ctx);
                Ok(())
            }
            fn batch(&self) -> Option<&dyn BatchKernel> { Some(self) }
        }
        fn host_side(b: &mut BatchContext<'_>) -> u32 {
            batch::granule_plan(8)
        }
    "#;
    let findings = check_file(Path::new("crates/core/src/kernels.rs"), src);
    let k011: Vec<_> = findings.iter().filter(|f| f.rule == "K011").collect();
    assert_eq!(k011.len(), 1, "exactly the kernel-side call: {findings:?}");
    assert!(k011[0].message.contains("run_batched"), "{k011:?}");
    assert_eq!(k011[0].line, 4, "{k011:?}");
}

/// D001: hashed collections in determinism-scoped library code (violating
/// and clean variants).
#[test]
fn d001_fixture() {
    let bad = r#"
        use std::collections::HashMap;
        pub fn merge(parts: &[u64]) -> HashMap<usize, u64> { HashMap::new() }
    "#;
    let findings = check_file(Path::new("crates/telemetry/src/metrics.rs"), bad);
    assert!(
        findings.iter().any(|f| f.rule == "D001"),
        "{findings:?}"
    );

    let clean = r#"
        use std::collections::BTreeMap;
        pub fn merge(parts: &[u64]) -> BTreeMap<usize, u64> { BTreeMap::new() }
    "#;
    assert!(rules_of("crates/telemetry/src/metrics.rs", clean).is_empty());
    // Same source is fine outside the determinism scope.
    assert!(rules_of("crates/analysis/src/report.rs", bad).is_empty());
}

/// D002: ambient time/entropy in determinism-scoped library code
/// (violating and clean variants).
#[test]
fn d002_fixture() {
    let bad = r#"
        pub fn seed() -> u64 {
            let t = std::time::Instant::now();
            thread_rng().next_u64()
        }
    "#;
    let findings = check_file(Path::new("crates/env/src/collect.rs"), bad);
    let d002: Vec<_> = findings.iter().filter(|f| f.rule == "D002").collect();
    assert_eq!(d002.len(), 2, "{findings:?}"); // Instant + thread_rng

    let clean = r#"
        pub fn seed(base: u64, dpu: u64) -> u64 { splitmix64(base ^ dpu) }
        fn splitmix64(x: u64) -> u64 { x.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    "#;
    assert!(rules_of("crates/env/src/collect.rs", clean).is_empty());
    // The CPU baselines measure wall-clock by design — out of scope.
    assert!(rules_of("crates/baselines/src/cpu_exec.rs", bad).is_empty());
}

/// D003: `std::env` reads in library code (violating and clean variants).
#[test]
fn d003_fixture() {
    let bad = r#"
        pub fn dpus() -> usize {
            std::env::var("SWIFTRL_DPUS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
        }
    "#;
    let findings = check_file(Path::new("crates/rl/src/train.rs"), bad);
    assert!(findings.iter().any(|f| f.rule == "D003"), "{findings:?}");

    // Binaries and the bench CLI parse the environment at the edge.
    assert!(!rules_of("crates/bench/src/bin/sweep.rs", bad).contains(&"D003"));
    assert!(!rules_of("crates/rl/src/main.rs", bad).contains(&"D003"));
    let clean = r#"
        pub fn dpus(cfg: &RunConfig) -> usize { cfg.dpus }
    "#;
    assert!(rules_of("crates/rl/src/train.rs", clean).is_empty());
}

/// K009: WRAM region constants beyond capacity or overlapping (violating
/// and clean variants).
#[test]
fn k009_fixture() {
    let bad = r#"
        pub const WRAM_Q_OFFSET: usize = 0;
        pub const WRAM_Q_BYTES: usize = 60 * 1024;
        pub const WRAM_BATCH_OFFSET: usize = 32 * 1024;
        pub const WRAM_BATCH_BYTES: usize = 64 * 1024;
    "#;
    let findings = check_file(Path::new("crates/core/src/kernels.rs"), bad);
    let k009: Vec<_> = findings.iter().filter(|f| f.rule == "K009").collect();
    // BATCH exceeds the 64-KB capacity and overlaps Q.
    assert_eq!(k009.len(), 2, "{findings:?}");
    assert!(k009.iter().any(|f| f.message.contains("exceeds")), "{k009:?}");
    assert!(k009.iter().any(|f| f.message.contains("overlap")), "{k009:?}");

    let clean = r#"
        pub const WRAM_Q_OFFSET: usize = 0;
        pub const WRAM_Q_BYTES: usize = 12_000;
        pub const WRAM_BATCH_OFFSET: usize = WRAM_Q_OFFSET + WRAM_Q_BYTES;
        pub const WRAM_BATCH_BYTES: usize = 8192;
    "#;
    assert!(rules_of("crates/core/src/kernels.rs", clean).is_empty());
}

/// K010: MRAM region constants overlapping (violating and clean variants).
#[test]
fn k010_fixture() {
    let bad = r#"
        pub const MRAM_HEADER_OFFSET: usize = 0;
        pub const MRAM_HEADER_BYTES: usize = 64;
        pub const MRAM_Q_TABLE_OFFSET: usize = 32;
        pub const MRAM_Q_TABLE_BYTES: usize = 12_000;
    "#;
    let findings = check_file(Path::new("crates/core/src/layout.rs"), bad);
    let k010: Vec<_> = findings.iter().filter(|f| f.rule == "K010").collect();
    assert_eq!(k010.len(), 1, "{findings:?}");
    assert!(k010[0].message.contains("overlap"), "{k010:?}");

    let clean = r#"
        pub const MRAM_HEADER_OFFSET: usize = 0;
        pub const MRAM_HEADER_BYTES: usize = 64;
        pub const MRAM_Q_TABLE_OFFSET: usize = MRAM_HEADER_BYTES;
        pub const MRAM_Q_TABLE_BYTES: usize = 12_000;
    "#;
    assert!(rules_of("crates/core/src/layout.rs", clean).is_empty());
}

/// W001 scoping: hard in library code, allowed in `#[cfg(test)]` modules,
/// `tests/`, benches, and binaries — the contract that let the ad-hoc
/// clippy suppressions be deleted.
#[test]
fn w001_scope_fixture() {
    let src = r#"
        pub fn lib(v: Option<u32>) -> u32 { v.unwrap() }
        #[cfg(test)]
        mod tests {
            fn t(v: Option<u32>) -> u32 { v.unwrap() }
        }
    "#;
    let lib_findings: Vec<Finding> = check_file(Path::new("crates/rl/src/qtable.rs"), src);
    let w001: Vec<_> = lib_findings.iter().filter(|f| f.rule == "W001").collect();
    assert_eq!(w001.len(), 1, "{lib_findings:?}"); // library unwrap only
    assert!(rules_of("tests/engine_determinism.rs", src).is_empty());
    assert!(rules_of("crates/bench/benches/fig7.rs", src).is_empty());
}

proptest! {
    /// The lexer never panics, whatever bytes arrive.
    #[test]
    fn tokenize_never_panics_on_arbitrary_strings(src in ".{0,400}") {
        let _ = scanner::tokenize(&src);
    }

    /// ... including invalid-UTF-8-derived byte soup with lots of string /
    /// comment / raw-string delimiters.
    #[test]
    fn tokenize_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = scanner::tokenize(&src);
    }

    /// Token line numbers are monotonically non-decreasing and 1-based.
    #[test]
    fn token_lines_are_monotonic(src in ".{0,400}") {
        let tokens = scanner::tokenize(&src);
        let mut last = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= last, "line went backwards: {} < {last}", t.line);
            last = t.line;
        }
    }

    /// check_file terminates without panicking on arbitrary input (the
    /// parser and call-graph layers inherit the lexer's robustness).
    #[test]
    fn check_file_never_panics(src in ".{0,200}") {
        let _ = check_file(Path::new("crates/core/src/fuzz.rs"), &src);
    }
}
