//! The kernel-discipline analyzer must report zero findings on the
//! workspace's own sources — the same gate `cargo run -p swiftrl-analysis`
//! enforces from the command line.

use swiftrl_analysis::{analyze_workspace, find_workspace_root};

#[test]
fn workspace_has_no_kernel_discipline_findings() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(
        analysis.files_scanned > 50,
        "suspiciously small scan: {} files",
        analysis.files_scanned
    );
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        analysis.findings.is_empty(),
        "kernel-discipline violations:\n{}",
        rendered.join("\n")
    );
}
