//! The kernel-discipline analyzer must report zero findings on the
//! workspace's own sources — the same gate `cargo run -p swiftrl-analysis`
//! enforces from the command line.

use swiftrl_analysis::{analyze_workspace, check_file, find_workspace_root};

#[test]
fn workspace_has_no_kernel_discipline_findings() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(
        analysis.files_scanned > 50,
        "suspiciously small scan: {} files",
        analysis.files_scanned
    );
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        analysis.findings.is_empty(),
        "kernel-discipline violations:\n{}",
        rendered.join("\n")
    );
}

/// K008 fixture: a kernel that emits telemetry is flagged; the identical
/// emission on the host side of the same file is not. Pins the rule the
/// workspace-clean gate above relies on to keep the event stream a
/// host-side-only observer.
#[test]
fn k008_fixture_flags_kernel_side_telemetry() {
    let src = r#"
        impl Kernel for Instrumented {
            fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
                self.sink.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
                Ok(())
            }
        }
        fn host_side(telemetry: &Telemetry) {
            telemetry.emit(|| Event::SyncRound { round: 0, live_dpus: 1 });
        }
    "#;
    let findings = check_file(std::path::Path::new("crates/core/src/kernels.rs"), src);
    let k008: Vec<_> = findings.iter().filter(|f| f.rule == "K008").collect();
    assert_eq!(k008.len(), 1, "exactly the kernel-side emit: {findings:?}");
    assert!(k008[0].message.contains("emit"), "{k008:?}");
    assert_eq!(k008[0].line, 4, "{k008:?}");
}
