//! End-to-end integration: collect → partition → PIM-train → aggregate →
//! evaluate, across environments and workload variants.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::taxi::Taxi;
use swiftrl::rl::eval::evaluate_greedy;

#[test]
fn frozen_lake_int32_learns_good_policy() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 60_000, 42);
    let outcome = PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults()
            .with_dpus(32)
            .with_episodes(150)
            .with_tau(50),
    )
    .unwrap()
    .run(&dataset)
    .unwrap();
    let stats = evaluate_greedy(&mut env, &outcome.q_table, 500, 9);
    assert!(
        stats.mean_reward > 0.55,
        "policy quality too low: {:.3}",
        stats.mean_reward
    );
}

#[test]
fn frozen_lake_fp32_and_int32_agree() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 40_000, 1);
    let cfg = RunConfig::paper_defaults()
        .with_dpus(16)
        .with_episodes(100)
        .with_tau(50);
    let fp = PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), cfg)
        .unwrap()
        .run(&dataset)
        .unwrap();
    let ix = PimRunner::new(WorkloadSpec::q_learning_seq_int32(), cfg)
        .unwrap()
        .run(&dataset)
        .unwrap();
    // Same greedy policy nearly everywhere and close Q-values.
    let diff = fp.q_table.max_abs_diff(&ix.q_table);
    assert!(diff < 0.05, "FP32/INT32 divergence {diff}");
    // And the INT32 kernel must be meaningfully faster.
    assert!(
        fp.breakdown.pim_kernel_s > 3.0 * ix.breakdown.pim_kernel_s,
        "FP32 {} vs INT32 {}",
        fp.breakdown.pim_kernel_s,
        ix.breakdown.pim_kernel_s
    );
}

#[test]
fn taxi_smoke_all_samplings() {
    let mut env = Taxi::new();
    let dataset = collect_random(&mut env, 30_000, 3);
    for spec in WorkloadSpec::paper_variants()
        .into_iter()
        .filter(|s| s.dtype == swiftrl::core::config::DataType::Int32)
    {
        let outcome = PimRunner::new(
            spec,
            RunConfig::paper_defaults()
                .with_dpus(8)
                .with_episodes(20)
                .with_tau(10),
        )
        .unwrap()
        .run(&dataset)
        .unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert!(outcome.q_table.values().iter().any(|&v| v != 0.0), "{spec}");
        assert!(outcome.breakdown.total_seconds() > 0.0, "{spec}");
    }
}

#[test]
fn breakdown_components_are_consistent() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 10_000, 5);
    let outcome = PimRunner::new(
        WorkloadSpec::sarsa_seq_int32(),
        RunConfig::paper_defaults()
            .with_dpus(8)
            .with_episodes(100)
            .with_tau(25),
    )
    .unwrap()
    .run(&dataset)
    .unwrap();
    let b = &outcome.breakdown;
    assert!(b.pim_kernel_s > 0.0);
    assert!(b.cpu_pim_s > 0.0);
    assert!(b.pim_cpu_s > 0.0);
    assert!(b.inter_pim_s > 0.0, "4 rounds must include syncs");
    assert!(b.program_load_s > 0.0);
    assert!(b.program_load_s <= b.cpu_pim_s, "load is part of CPU-PIM");
    let total = b.total_seconds();
    assert!(
        (total - (b.pim_kernel_s + b.cpu_pim_s + b.pim_cpu_s + b.inter_pim_s)).abs() < 1e-12
    );
    assert_eq!(outcome.comm_rounds, 4);
}

#[test]
fn deterministic_given_seed() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 20_000, 11);
    let cfg = RunConfig::paper_defaults()
        .with_dpus(16)
        .with_episodes(50)
        .with_tau(50)
        .with_seed(77);
    let a = PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), cfg)
        .unwrap()
        .run(&dataset)
        .unwrap();
    let b = PimRunner::new(WorkloadSpec::q_learning_seq_fp32(), cfg)
        .unwrap()
        .run(&dataset)
        .unwrap();
    assert_eq!(a.q_table, b.q_table);
    assert_eq!(a.breakdown, b.breakdown);
}
