//! The LCG `rand()` replacement must be the *same generator* on the host
//! (swiftrl-rl) and inside PIM kernels (swiftrl-pim) — otherwise the
//! SARSA and RAN-sampling parity guarantees silently break.

use swiftrl::pim::emul::Lcg32 as PimLcg;
use swiftrl::rl::rng::Lcg32 as HostLcg;

#[test]
fn constants_match() {
    assert_eq!(PimLcg::MULTIPLIER, HostLcg::MULTIPLIER);
    assert_eq!(PimLcg::INCREMENT, HostLcg::INCREMENT);
}

#[test]
fn streams_match() {
    let mut pim = PimLcg::new(123);
    let mut host = HostLcg::new(123);
    for _ in 0..10_000 {
        assert_eq!(pim.next_u32(), host.next_raw());
    }
}

#[test]
fn bounded_draws_match() {
    let mut pim = PimLcg::new(7);
    let mut host = HostLcg::new(7);
    for bound in [2u32, 4, 6, 500, 10_000] {
        for _ in 0..100 {
            assert_eq!(pim.next_below(bound), host.below(bound));
        }
    }
}
