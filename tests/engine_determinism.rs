//! Cross-crate determinism of the execution engines: the threaded and
//! work-stealing engines must be bit-identical to the serial reference
//! in everything except wall-clock — Q-tables, cycle statistics, time
//! breakdowns, and sanitizer finding order — across every paper
//! workload variant, and at paper-scale fleet sizes (2,524 DPUs).
//!
//! This is the contract that makes the parallel engines safe to enable
//! by default: `ExecutionEngine` is a pure scheduling choice, invisible
//! in every simulated observable.

use proptest::prelude::*;
use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::resilience::ResilienceConfig;
use swiftrl::core::runner::{PimRunner, RunOutcome};
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;
use swiftrl::pim::config::{ArithTier, PimConfig};
use swiftrl::pim::faults::FaultPlan;
use swiftrl::pim::host::PimSystem;
use swiftrl::pim::kernel::{DpuContext, Kernel, KernelError};
use swiftrl::pim::sanitize::SanitizeLevel;
use swiftrl::pim::ExecutionEngine;

fn dataset(n: usize) -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, n, 13)
}

fn run_with_engine(
    spec: WorkloadSpec,
    cfg: RunConfig,
    engine: ExecutionEngine,
) -> RunOutcome {
    let platform = PimConfig::builder()
        .dpus(cfg.dpus)
        .engine(engine)
        .sanitize(SanitizeLevel::Full)
        .build();
    PimRunner::with_platform(spec, cfg, platform)
        .unwrap()
        .run(&dataset(2_000))
        .unwrap()
}

/// The headline guarantee: all 12 paper variants produce bit-identical
/// outcomes under the serial, threaded, and work-stealing engines.
#[test]
fn parallel_engines_are_bit_identical_across_all_paper_variants() {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(6)
        .with_episodes(4)
        .with_tau(2);
    for spec in WorkloadSpec::paper_variants() {
        let serial = run_with_engine(spec, cfg, ExecutionEngine::Serial);
        for engine in [
            ExecutionEngine::Threaded { workers: 3 },
            ExecutionEngine::WorkStealing { workers: 3 },
        ] {
            let parallel = run_with_engine(spec, cfg, engine);
            assert_eq!(
                serial.q_table, parallel.q_table,
                "{spec}/{engine:?}: Q-tables diverged between engines"
            );
            assert_eq!(
                serial.breakdown, parallel.breakdown,
                "{spec}/{engine:?}: time breakdowns diverged between engines"
            );
            assert_eq!(serial.comm_rounds, parallel.comm_rounds, "{spec}/{engine:?}");
            assert_eq!(
                serial.sanitizer.findings, parallel.sanitizer.findings,
                "{spec}/{engine:?}: sanitizer findings (or their order) diverged"
            );
            assert_eq!(
                serial.sanitizer.sanitized_launches, parallel.sanitizer.sanitized_launches,
                "{spec}/{engine:?}"
            );
            assert_eq!(
                serial.memory, parallel.memory,
                "{spec}/{engine:?}: memory ceilings diverged between engines"
            );
        }
    }
}

/// The same guarantee under an active fault plan: every paper variant,
/// run with seeded transient aborts recovered by the retry loop, is
/// byte-identical across all three engines — fault decisions key on
/// pure data, never on the schedule.
#[test]
fn faulted_paper_variants_are_bit_identical_across_engines() {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(6)
        .with_episodes(4)
        .with_tau(2);
    let run = |spec, engine| {
        let platform = PimConfig::builder()
            .dpus(cfg.dpus)
            .engine(engine)
            .sanitize(SanitizeLevel::Full)
            .faults(FaultPlan::seeded(7).with_dpu_fail_rate(0.1))
            .build();
        PimRunner::with_platform(spec, cfg, platform)
            .unwrap()
            .with_resilience(ResilienceConfig::none().with_max_retries(4))
            .run(&dataset(2_000))
            .unwrap()
    };
    for spec in WorkloadSpec::paper_variants() {
        let serial = run(spec, ExecutionEngine::Serial);
        for engine in [
            ExecutionEngine::Threaded { workers: 3 },
            ExecutionEngine::WorkStealing { workers: 3 },
        ] {
            let parallel = run(spec, engine);
            assert_eq!(
                serial.q_table, parallel.q_table,
                "{spec}/{engine:?}: Q-tables diverged under faults"
            );
            assert_eq!(
                serial.breakdown, parallel.breakdown,
                "{spec}/{engine:?}: time breakdowns diverged under faults"
            );
            assert_eq!(
                serial.resilience, parallel.resilience,
                "{spec}/{engine:?}: resilience stats diverged under faults"
            );
            assert_eq!(serial.memory, parallel.memory, "{spec}/{engine:?}");
        }
    }
}

/// The batched execution tier is as engine-invariant as the others: the
/// fused whole-launch sweep runs per DPU, so which worker executes it is
/// still a pure scheduling choice. With the sanitizer off (the fused
/// path is only taken when nothing needs per-access observation), every
/// paper variant — with and without an active fault plan forcing touched
/// launches back onto the per-intrinsic path — produces identical
/// Q-tables, breakdowns, resilience stats, and memory ceilings across
/// the serial, threaded, and work-stealing engines.
#[test]
fn batched_tier_is_engine_invariant_with_and_without_faults() {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(6)
        .with_episodes(4)
        .with_tau(2);
    let data = dataset(2_000);
    let run = |spec, engine, faults: Option<FaultPlan>| {
        let mut builder = PimConfig::builder()
            .dpus(cfg.dpus)
            .engine(engine)
            .arith_tier(ArithTier::Batched);
        if let Some(plan) = faults {
            builder = builder.faults(plan);
        }
        PimRunner::with_platform(spec, cfg, builder.build())
            .unwrap()
            .with_resilience(ResilienceConfig::none().with_max_retries(4))
            .run(&data)
            .unwrap()
    };
    let plans: [Option<FaultPlan>; 2] = [
        None,
        Some(FaultPlan::seeded(7).with_dpu_fail_rate(0.1).with_stragglers(0.3, 2.5)),
    ];
    for spec in WorkloadSpec::paper_variants() {
        for plan in &plans {
            let serial = run(spec, ExecutionEngine::Serial, plan.clone());
            for engine in [
                ExecutionEngine::Threaded { workers: 3 },
                ExecutionEngine::WorkStealing { workers: 3 },
            ] {
                let parallel = run(spec, engine, plan.clone());
                assert_eq!(
                    serial.q_table, parallel.q_table,
                    "{spec}/{engine:?} (faults: {}): batched Q-tables diverged",
                    plan.is_some()
                );
                assert_eq!(
                    serial.breakdown, parallel.breakdown,
                    "{spec}/{engine:?} (faults: {}): batched breakdowns diverged",
                    plan.is_some()
                );
                assert_eq!(
                    serial.resilience, parallel.resilience,
                    "{spec}/{engine:?} (faults: {}): batched resilience stats diverged",
                    plan.is_some()
                );
                assert_eq!(
                    serial.memory, parallel.memory,
                    "{spec}/{engine:?} (faults: {}): batched memory ceilings diverged",
                    plan.is_some()
                );
            }
        }
    }
}

/// A kernel whose per-DPU behaviour is distinguishable: skewed cycle
/// charge and one deterministic sanitizer finding (an uninitialized WRAM
/// read) per DPU, so cycle statistics and finding order are sensitive to
/// any merge-order mistake in the engine.
struct SkewedDirtyKernel;
impl Kernel for SkewedDirtyKernel {
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let id = ctx.dpu_id() as u64;
        ctx.charge_alu(7 * (id + 1));
        // Never written: flagged once per DPU by the sanitizer.
        let _ = ctx.wram_read_u32(256 + 8 * id as usize)?;
        ctx.mram_write(0, &id.to_le_bytes())?;
        Ok(())
    }
}

fn launch_on_engine(engine: ExecutionEngine, dpus: usize) -> (swiftrl::pim::stats::LaunchStats, Vec<String>) {
    let mut sys = PimSystem::new(
        PimConfig::builder()
            .dpus(dpus)
            .mram_bytes(1 << 16)
            .engine(engine)
            .sanitize(SanitizeLevel::Full)
            .build(),
    );
    let mut set = sys.alloc(dpus).unwrap();
    set.launch(&SkewedDirtyKernel).unwrap();
    let findings = set
        .sanitizer_report()
        .findings
        .iter()
        .map(ToString::to_string)
        .collect();
    (set.last_launch().clone(), findings)
}

/// Launch statistics (max/min/mean cycles, merged counters) and the
/// sanitizer finding *order* are identical between engines even when the
/// per-DPU load is skewed and every DPU reports findings.
#[test]
fn launch_stats_and_finding_order_match_serial() {
    let (serial_stats, serial_findings) = launch_on_engine(ExecutionEngine::Serial, 9);
    for engine in [
        ExecutionEngine::Threaded { workers: 4 },
        ExecutionEngine::WorkStealing { workers: 4 },
    ] {
        let (parallel_stats, parallel_findings) = launch_on_engine(engine, 9);
        assert_eq!(serial_stats, parallel_stats, "{engine:?}");
        assert_eq!(serial_findings, parallel_findings, "{engine:?}");
    }
    // Findings are in DPU-index order, one per DPU.
    assert_eq!(serial_findings.len(), 9);
    for (dpu, finding) in serial_findings.iter().enumerate() {
        assert!(
            finding.starts_with(&format!("dpu {dpu} ")),
            "finding {dpu} out of order: {finding}"
        );
    }
}

/// Byte-identity holds at paper-scale fleet sizes too: 128 DPUs (two
/// full ranks) and the paper's 2,524-DPU fleet produce identical
/// statistics and finding order under all three engines. Lazy bank
/// materialization is what makes allocating a 2,524-DPU set cheap
/// enough to exercise in a unit test.
#[test]
fn fleet_scale_launches_match_across_engines() {
    for dpus in [128, 2_524] {
        let (serial_stats, serial_findings) = launch_on_engine(ExecutionEngine::Serial, dpus);
        assert_eq!(serial_findings.len(), dpus);
        for engine in [
            ExecutionEngine::Threaded { workers: 4 },
            ExecutionEngine::WorkStealing { workers: 4 },
        ] {
            let (parallel_stats, parallel_findings) = launch_on_engine(engine, dpus);
            assert_eq!(serial_stats, parallel_stats, "{dpus} dpus / {engine:?}");
            assert_eq!(serial_findings, parallel_findings, "{dpus} dpus / {engine:?}");
        }
    }
}

/// Fault decisions key on pure data, so even at the paper's fleet size
/// a seeded fault plan aborts the *same* DPUs — and reports the same
/// first-faulting DPU — under every engine.
#[test]
fn fleet_scale_faulted_launches_match_across_engines() {
    let launch = |engine| {
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(2_524)
                .mram_bytes(1 << 16)
                .engine(engine)
                .faults(FaultPlan::seeded(11).with_dpu_fail_rate(0.01))
                .build(),
        );
        let mut set = sys.alloc(2_524).unwrap();
        let err = match set.launch(&SkewedDirtyKernel) {
            Err(e) => format!("{e:?}"),
            Ok(stats) => panic!("expected a faulted launch, got clean stats {stats:?}"),
        };
        (err, set.last_launch().clone(), set.stats().clone())
    };
    let (serial_err, serial_launch, serial_stats) = launch(ExecutionEngine::Serial);
    assert!(serial_launch.is_faulted());
    for engine in [
        ExecutionEngine::Threaded { workers: 4 },
        ExecutionEngine::WorkStealing { workers: 4 },
    ] {
        let (err, launch_stats, stats) = launch(engine);
        assert_eq!(serial_err, err, "{engine:?}");
        assert_eq!(serial_launch, launch_stats, "{engine:?}");
        assert_eq!(serial_stats, stats, "{engine:?}");
    }
}

/// Faulted launches are bit-identical across engines too: the same DPUs
/// fault (decisions key on pure data, not schedule), the first-faulting
/// DPU reported in the error is the same, the surviving DPUs'
/// merged statistics match, and the faulted-launch accounting agrees.
#[test]
fn faulted_launches_match_across_engines() {
    let launch = |engine| {
        let mut sys = PimSystem::new(
            PimConfig::builder()
                .dpus(8)
                .mram_bytes(1 << 16)
                .engine(engine)
                .sanitize(SanitizeLevel::Full)
                .faults(FaultPlan::seeded(5).with_dpu_fail_rate(0.4))
                .build(),
        );
        let mut set = sys.alloc(8).unwrap();
        let err = match set.launch(&SkewedDirtyKernel) {
            Err(e) => format!("{e:?}"),
            Ok(stats) => panic!("expected a faulted launch, got clean stats {stats:?}"),
        };
        (err, set.last_launch().clone(), set.stats().clone())
    };
    let (serial_err, serial_launch, serial_stats) = launch(ExecutionEngine::Serial);
    assert!(serial_launch.is_faulted());
    assert_eq!(serial_stats.faulted_launches, 1);
    assert_eq!(serial_stats.launches, 0);
    for engine in [
        ExecutionEngine::Threaded { workers: 3 },
        ExecutionEngine::WorkStealing { workers: 3 },
    ] {
        let (err, launch_stats, stats) = launch(engine);
        assert_eq!(serial_err, err, "{engine:?}");
        assert_eq!(serial_launch, launch_stats, "{engine:?}");
        assert_eq!(serial_stats, stats, "{engine:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (DPU count, worker count) pair reproduces the serial outcome
    /// under both parallel engines.
    #[test]
    fn any_worker_count_matches_serial(dpus in 1usize..12, workers in 1usize..8) {
        let cfg = RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(2)
            .with_tau(2);
        let spec = WorkloadSpec::q_learning_seq_int32();
        let serial = run_with_engine(spec, cfg, ExecutionEngine::Serial);
        for engine in [
            ExecutionEngine::Threaded { workers },
            ExecutionEngine::WorkStealing { workers },
        ] {
            let parallel = run_with_engine(spec, cfg, engine);
            prop_assert_eq!(&serial.q_table, &parallel.q_table);
            prop_assert_eq!(&serial.breakdown, &parallel.breakdown);
            prop_assert_eq!(&serial.sanitizer.findings, &parallel.sanitizer.findings);
        }
    }
}
