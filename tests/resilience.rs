//! End-to-end resilience tests: deterministic fault injection at the
//! platform layer ([`swiftrl::pim::faults::FaultPlan`]) against the
//! host-side retry / checkpoint / degrade policy of
//! [`swiftrl::core::resilience::ResilienceConfig`].

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::resilience::ResilienceConfig;
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::ExperienceDataset;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::pim::config::PimConfig;
use swiftrl::pim::faults::FaultPlan;
use swiftrl::pim::ExecutionEngine;

fn dataset() -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, 2_000, 42)
}

fn cfg(dpus: usize) -> RunConfig {
    RunConfig::paper_defaults()
        .with_dpus(dpus)
        .with_episodes(20)
        .with_tau(5)
}

/// Transient faults absorbed by retries leave no trace in the learned
/// policy: an injected fault aborts before any kernel work, so the
/// relaunch replays the identical episode window and the final Q-table
/// is bit-identical to the faultless run.
#[test]
fn retries_reproduce_the_faultless_q_table() {
    let d = dataset();
    let spec = WorkloadSpec::q_learning_seq_fp32();
    let clean = PimRunner::new(spec, cfg(4)).unwrap().run(&d).unwrap();

    let platform = PimConfig::builder()
        .dpus(4)
        .faults(FaultPlan::seeded(7).with_dpu_fail_rate(0.3))
        .build();
    let out = PimRunner::with_platform(spec, cfg(4), platform)
        .unwrap()
        .with_resilience(ResilienceConfig::none().with_max_retries(8))
        .run(&d)
        .unwrap();

    assert!(
        out.resilience.faults_seen > 0,
        "fault plan never fired; the test is vacuous"
    );
    assert!(out.resilience.retries > 0);
    assert!(out.resilience.degraded_dpus.is_empty());
    assert!(out.resilience.faulted_kernel_seconds > 0.0);
    assert_eq!(out.q_table, clean.q_table);
    assert_eq!(out.comm_rounds, clean.comm_rounds);
}

/// A permanently dead DPU is dropped and its chunk remapped onto the
/// survivors; training completes and still learns.
#[test]
fn degraded_run_completes_without_the_dead_dpu() {
    let d = dataset();
    let spec = WorkloadSpec::q_learning_seq_int32();
    let platform = PimConfig::builder()
        .dpus(4)
        .faults(FaultPlan::seeded(1).with_dead_dpus(vec![2], 0))
        .build();
    let out = PimRunner::with_platform(spec, cfg(4), platform)
        .unwrap()
        .with_resilience(
            ResilienceConfig::none()
                .with_max_retries(1)
                .with_degrade(true),
        )
        .run(&d)
        .unwrap();

    assert_eq!(out.resilience.degraded_dpus, vec![2]);
    // The dead DPU faulted in the initial launch and again in the retry.
    assert_eq!(out.resilience.faults_seen, 2);
    assert_eq!(out.resilience.retries, 1);
    // No periodic checkpoint was configured, so the survivors roll back
    // to the implicit round-0 snapshot (the initial Q-table) and replay
    // from scratch.
    assert_eq!(out.resilience.rollbacks, 1);
    assert_eq!(out.resilience.checkpoints, 0, "no periodic checkpoint fired");
    assert!(out.resilience.faulted_kernel_seconds > 0.0);
    assert!(out.q_table.values().iter().any(|&v| v != 0.0));
}

/// Regression test: a degradation *before the first periodic
/// checkpoint* (here: none configured at all) must roll the survivors
/// back to the initial Q-table, not keep the partially-updated tables
/// the faulted round produced. The degraded run is pinned byte-for-byte
/// against an explicit from-scratch survivor run on the remapped
/// dataset.
#[test]
fn degradation_before_first_checkpoint_replays_from_scratch() {
    use swiftrl::core::partition::partition_even;

    let d = dataset();
    let spec = WorkloadSpec::q_learning_seq_fp32();
    let dead = 2usize;

    // DPU 2 is dead from its very first launch; no checkpoint_every.
    let platform = PimConfig::builder()
        .dpus(4)
        .faults(FaultPlan::seeded(1).with_dead_dpus(vec![dead], 0))
        .build();
    let degraded = PimRunner::with_platform(spec, cfg(4), platform)
        .unwrap()
        .with_resilience(
            ResilienceConfig::none()
                .with_max_retries(1)
                .with_degrade(true),
        )
        .run(&d)
        .unwrap();
    assert_eq!(degraded.resilience.rollbacks, 1);
    assert_eq!(degraded.resilience.degraded_dpus, vec![dead]);

    // Reconstruct the survivors' remapped dataset exactly as `degrade`
    // lays it out: each survivor keeps its own chunk and appends its
    // even share of the dead DPU's chunk behind it.
    let chunks = partition_even(d.len(), 4);
    let survivors = [0usize, 1, 3];
    let orphan = chunks[dead].clone();
    let shares = partition_even(orphan.len(), survivors.len());
    let mut remapped = ExperienceDataset::new("frozen_lake", d.num_states(), d.num_actions());
    for (slot, &dpu) in survivors.iter().enumerate() {
        for &t in &d.transitions()[chunks[dpu].clone()] {
            remapped.push(t);
        }
        let share = orphan.start + shares[slot].start..orphan.start + shares[slot].end;
        for &t in &d.transitions()[share] {
            remapped.push(t);
        }
    }
    assert_eq!(remapped.len(), d.len());

    // A from-scratch 3-DPU run on the remapped dataset must land on
    // the identical Q-table: the rollback to the round-0 snapshot means
    // no survivor carries any state from the faulted round.
    let fresh = PimRunner::new(spec, cfg(3)).unwrap().run(&remapped).unwrap();
    assert_eq!(degraded.q_table, fresh.q_table);
}

/// With checkpointing enabled, losing a DPU mid-run rolls the survivors
/// back to the last snapshot and replays from there instead of losing
/// the dead DPU's episodes since the checkpoint.
#[test]
fn rollback_replays_from_the_checkpointed_round() {
    let d = dataset();
    let spec = WorkloadSpec::q_learning_seq_fp32();
    // DPU 1 dies at its third launch (sync round 2); snapshots are taken
    // every round, so the run rolls back to the round-2 checkpoint.
    let platform = PimConfig::builder()
        .dpus(4)
        .faults(FaultPlan::seeded(9).with_dead_dpus(vec![1], 2))
        .build();
    let out = PimRunner::with_platform(spec, cfg(4), platform)
        .unwrap()
        .with_resilience(
            ResilienceConfig::none()
                .with_checkpoint_every(1)
                .with_degrade(true),
        )
        .run(&d)
        .unwrap();

    assert_eq!(out.resilience.degraded_dpus, vec![1]);
    assert_eq!(out.resilience.rollbacks, 1);
    assert!(out.resilience.checkpoints >= 2);
    assert!(out.resilience.checkpoint_bytes > 0);
    assert!(out.q_table.values().iter().any(|&v| v != 0.0));
}

/// A resilience policy without faults to respond to changes nothing:
/// every paper variant stays bit-identical to the plain runner, even
/// with retries armed, checkpoints taken every round, and degrade on.
#[test]
fn resilience_machinery_is_invisible_without_faults() {
    let d = dataset();
    for spec in WorkloadSpec::paper_variants() {
        let c = cfg(4).with_episodes(4).with_tau(2);
        let plain = PimRunner::new(spec, c).unwrap().run(&d).unwrap();
        let resilient = PimRunner::new(spec, c)
            .unwrap()
            .with_resilience(
                ResilienceConfig::none()
                    .with_max_retries(3)
                    .with_checkpoint_every(1)
                    .with_degrade(true),
            )
            .run(&d)
            .unwrap();
        assert_eq!(plain.q_table, resilient.q_table, "{spec}");
        assert_eq!(plain.breakdown, resilient.breakdown, "{spec}");
        assert!(resilient.resilience.is_clean(), "{spec}");
        assert!(resilient.resilience.checkpoints > 0, "{spec}");
    }
}

/// Faulted, degraded, straggler-skewed runs are still bit-identical
/// between the serial and threaded engines: every fault decision keys
/// on pure data (seed, DPU, per-DPU launch index), never on schedule.
#[test]
fn faulted_resilient_runs_are_engine_deterministic() {
    let d = dataset();
    let spec = WorkloadSpec::q_learning_seq_int32();
    let run = |engine| {
        let platform = PimConfig::builder()
            .dpus(6)
            .engine(engine)
            .faults(
                FaultPlan::seeded(11)
                    .with_dpu_fail_rate(0.2)
                    .with_stragglers(0.3, 2.5),
            )
            .build();
        PimRunner::with_platform(spec, cfg(6), platform)
            .unwrap()
            .with_resilience(
                ResilienceConfig::none()
                    .with_max_retries(4)
                    .with_checkpoint_every(1)
                    .with_degrade(true),
            )
            .run(&d)
            .unwrap()
    };
    let serial = run(ExecutionEngine::Serial);
    let threaded = run(ExecutionEngine::Threaded { workers: 3 });
    assert!(
        serial.resilience.faults_seen > 0,
        "fault plan never fired; the test is vacuous"
    );
    assert_eq!(serial.q_table, threaded.q_table);
    assert_eq!(serial.breakdown, threaded.breakdown);
    assert_eq!(serial.resilience, threaded.resilience);
}

/// Without a resilience policy a fault is fatal, exactly as before the
/// resilience layer existed.
#[test]
fn faults_stay_fatal_without_a_policy() {
    let d = dataset();
    let platform = PimConfig::builder()
        .dpus(4)
        .faults(FaultPlan::seeded(1).with_dead_dpus(vec![3], 0))
        .build();
    let err = PimRunner::with_platform(WorkloadSpec::q_learning_seq_fp32(), cfg(4), platform)
        .unwrap()
        .run(&d)
        .unwrap_err();
    match err {
        swiftrl::pim::host::PimError::Kernel { dpu, .. } => assert_eq!(dpu, 3),
        other => panic!("expected a kernel fault on DPU 3, got {other:?}"),
    }
}
