//! The strongest correctness property of the reproduction: a single-DPU,
//! single-round PIM run is **bit-identical** to the host reference
//! trainer for every one of the 12 workload variants — the simulated
//! kernels compute exactly the paper's algorithms, arithmetic included.

use swiftrl::core::config::{DataType, RunConfig, WorkloadSpec};
use swiftrl::core::layout::dpu_seed;
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;
use swiftrl::rl::fixed::FixedScale;
use swiftrl::rl::qlearning::{train_offline_fixed, QLearningConfig};
use swiftrl::rl::qtable::QTable;
use swiftrl::rl::sarsa::{self, SarsaConfig};

const EPISODES: u32 = 12;

fn dataset() -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, 1_500, 77)
}

fn pim_table(spec: WorkloadSpec, dataset: &ExperienceDataset, seed: u32) -> QTable {
    let cfg = RunConfig::paper_defaults()
        .with_dpus(1)
        .with_episodes(EPISODES)
        .with_tau(EPISODES)
        .with_seed(seed);
    PimRunner::new(spec, cfg)
        .unwrap()
        .run(dataset)
        .unwrap()
        .q_table
}

#[test]
fn all_twelve_variants_match_host_reference() {
    let data = dataset();
    let run_seed = 4242;
    let kernel_seed = dpu_seed(run_seed, 0);
    let scale = FixedScale::paper();

    for spec in WorkloadSpec::paper_variants() {
        let pim = pim_table(spec, &data, run_seed);
        let host = match (spec.algorithm, spec.dtype) {
            (swiftrl::core::config::Algorithm::QLearning, DataType::Fp32) => {
                let cfg = QLearningConfig {
                    alpha: 0.1,
                    gamma: 0.95,
                    episodes: EPISODES,
                };
                swiftrl::rl::qlearning::train_offline(&data, &cfg, spec.sampling, kernel_seed)
            }
            (swiftrl::core::config::Algorithm::QLearning, DataType::Int32) => {
                let cfg = QLearningConfig {
                    alpha: 0.1,
                    gamma: 0.95,
                    episodes: EPISODES,
                };
                train_offline_fixed(&data, &cfg, spec.sampling, scale, kernel_seed).to_float()
            }
            (swiftrl::core::config::Algorithm::Sarsa, DataType::Fp32) => {
                let cfg = SarsaConfig {
                    alpha: 0.1,
                    gamma: 0.95,
                    episodes: EPISODES,
                    epsilon: 0.1,
                };
                sarsa::train_offline(&data, &cfg, spec.sampling, kernel_seed)
            }
            (swiftrl::core::config::Algorithm::Sarsa, DataType::Int32) => {
                let cfg = SarsaConfig {
                    alpha: 0.1,
                    gamma: 0.95,
                    episodes: EPISODES,
                    epsilon: 0.1,
                };
                sarsa::train_offline_fixed(&data, &cfg, spec.sampling, scale, kernel_seed)
                    .to_float()
            }
        };
        // Bit-exact: the PIM kernels run the identical arithmetic (soft
        // float is IEEE-754-exact; fixed point is integer-exact).
        assert_eq!(
            pim.to_bytes(),
            host.to_bytes(),
            "{spec} diverged from the host reference"
        );
    }
}

#[test]
fn multi_dpu_differs_from_single_learner_by_averaging_only() {
    // With N DPUs and one round, the result must equal the mean of N
    // independently trained chunk learners.
    let data = dataset();
    let run_seed = 9;
    let spec = WorkloadSpec::q_learning_seq_fp32();
    let n = 4;
    let cfg = RunConfig::paper_defaults()
        .with_dpus(n)
        .with_episodes(EPISODES)
        .with_tau(EPISODES)
        .with_seed(run_seed);
    let pim = PimRunner::new(spec, cfg).unwrap().run(&data).unwrap().q_table;

    let ranges = swiftrl::core::partition::partition_even(data.len(), n);
    let locals: Vec<QTable> = ranges
        .iter()
        .enumerate()
        .map(|(dpu, r)| {
            let mut q = QTable::zeros(data.num_states(), data.num_actions());
            let cfg = QLearningConfig {
                alpha: 0.1,
                gamma: 0.95,
                episodes: EPISODES,
            };
            swiftrl::rl::qlearning::train_offline_into(
                &mut q,
                &data.transitions()[r.clone()],
                &cfg,
                spec.sampling,
                dpu_seed(run_seed, dpu),
            );
            q
        })
        .collect();
    let expected = QTable::mean_of(&locals);
    assert_eq!(pim.to_bytes(), expected.to_bytes());
}
