//! Fleet-edge-case sweep: configurations at the boundaries of the
//! fleet model — more DPUs than transitions (empty tail chunks from
//! [`swiftrl::core::partition::partition_even`]) — must stay correct
//! in both results and transfer-time/rank accounting.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::pim::config::{ArithTier, PimConfig};
use swiftrl::pim::host::PimSystem;
use swiftrl::pim::xfer::Direction;
use swiftrl::telemetry::TransferKind;

/// More DPUs than transitions: the tail DPUs receive empty chunks. The
/// dataset scatter must charge transfer time for the addressed DPUs
/// only and must not count the all-empty tail ranks toward the
/// transfer's rank parallelism.
#[test]
fn empty_chunks_charge_no_transfer_time_or_ranks() {
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 6, 42);

    // 10 DPUs at 4 per rank = 3 ranks; 6 transitions fill one-element
    // chunks on DPUs 0..6 (ranks 0-1) and leave DPUs 6..10 empty —
    // rank 2 is entirely empty and must not be "touched" by the load.
    let platform = PimConfig::builder().dpus(10).dpus_per_rank(4).build();
    let cfg = RunConfig::paper_defaults()
        .with_dpus(10)
        .with_episodes(4)
        .with_tau(2);
    let spec = WorkloadSpec::q_learning_seq_fp32();
    let runner = PimRunner::with_platform(spec, cfg, platform.clone()).unwrap();

    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(10).unwrap();
    let out = runner.run_on(&mut set, &dataset, None).unwrap();
    assert_eq!(out.dpus, 10);
    assert!(out.breakdown.total_seconds() > 0.0);

    // The dataset scatter is the largest CPU→PIM scatter of the run
    // (headers are scattered too, to all 10 DPUs).
    let chunk_scatter = set
        .ledger()
        .records()
        .iter()
        .filter(|r| r.direction == Direction::CpuToPim)
        .find(|r| r.dpus == 6)
        .expect("dataset chunk scatter addressing exactly the 6 non-empty DPUs");
    assert_eq!(chunk_scatter.ranks, 2, "empty rank 2 is not addressed");
    assert!(chunk_scatter.seconds > 0.0);
}

/// A run with empty tail chunks completes, learns on the transitions
/// it has, and the empty-chunk DPUs contribute all-zero Q-tables to
/// the average exactly like a solo small fleet padded with idle DPUs.
#[test]
fn run_with_more_dpus_than_transitions_completes() {
    // Taxi's -1 step reward makes any learning visible in the Q-table.
    let mut env = swiftrl::env::taxi::Taxi::new();
    let dataset = collect_random(&mut env, 40, 7);

    let spec = WorkloadSpec::q_learning_seq_int32();
    let cfg = RunConfig::paper_defaults()
        .with_dpus(64)
        .with_episodes(4)
        .with_tau(2);
    let out = PimRunner::new(spec, cfg).unwrap().run(&dataset).unwrap();
    assert_eq!(out.comm_rounds, 2);
    assert!(out.q_table.values().iter().any(|&v| v != 0.0));
}

/// The batched tier handles empty replay chunks: with more DPUs than
/// transitions, the tail DPUs' fused sweeps see `n_transitions == 0`
/// and still charge the per-episode control slots the interpreter
/// charges, so the run is bit- and cycle-identical to the reference
/// tier — empty-chunk DPUs included.
#[test]
fn batched_tier_identical_with_empty_replay_chunks() {
    let mut env = FrozenLake::slippery_4x4();
    // 6 transitions over 10 DPUs: DPUs 6..10 hold empty chunks.
    let dataset = collect_random(&mut env, 6, 42);
    let cfg = RunConfig::paper_defaults()
        .with_dpus(10)
        .with_episodes(4)
        .with_tau(2);
    let run = |tier| {
        let platform = PimConfig::builder()
            .dpus(10)
            .dpus_per_rank(4)
            .arith_tier(tier)
            .build();
        PimRunner::with_platform(WorkloadSpec::q_learning_seq_fp32(), cfg, platform)
            .unwrap()
            .run(&dataset)
            .unwrap()
    };
    let reference = run(ArithTier::Reference);
    let batched = run(ArithTier::Batched);
    assert_eq!(
        reference.q_table.to_bytes(),
        batched.q_table.to_bytes(),
        "empty-chunk run: Q-tables diverged under the batched tier"
    );
    assert_eq!(
        reference.breakdown, batched.breakdown,
        "empty-chunk run: time breakdowns diverged under the batched tier"
    );
}

/// More DPUs than transitions under the batched tier completes, learns,
/// and matches the fast tier byte-for-byte — including the all-zero
/// contributions of the idle tail DPUs to the aggregated average.
#[test]
fn batched_run_with_more_dpus_than_transitions_matches_fast() {
    let mut env = swiftrl::env::taxi::Taxi::new();
    let dataset = collect_random(&mut env, 40, 7);
    let cfg = RunConfig::paper_defaults()
        .with_dpus(64)
        .with_episodes(4)
        .with_tau(2);
    let run = |tier| {
        let platform = PimConfig::builder().dpus(64).arith_tier(tier).build();
        PimRunner::with_platform(WorkloadSpec::q_learning_seq_int32(), cfg, platform)
            .unwrap()
            .run(&dataset)
            .unwrap()
    };
    let fast = run(ArithTier::Fast);
    let batched = run(ArithTier::Batched);
    assert_eq!(batched.comm_rounds, 2);
    assert!(batched.q_table.values().iter().any(|&v| v != 0.0));
    assert_eq!(fast.q_table.to_bytes(), batched.q_table.to_bytes());
    assert_eq!(fast.breakdown, batched.breakdown);
}

/// Telemetry cross-check: the scatter event stream agrees with the
/// ledger on the byte totals of an empty-tail load.
#[test]
fn scatter_event_reports_addressed_dpus_only() {
    use swiftrl::telemetry::{Event, Telemetry};

    let telemetry = Telemetry::enabled();
    let platform = PimConfig::builder()
        .dpus(8)
        .dpus_per_rank(4)
        .telemetry(telemetry.clone())
        .build();
    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(8).unwrap();
    let mut parts = vec![vec![9u8; 16]; 3];
    parts.resize(8, Vec::new());
    set.scatter(0, &parts).unwrap();

    let scatters: Vec<(u64, usize)> = telemetry
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Transfer {
                kind: TransferKind::Scatter,
                bytes,
                dpus,
                ..
            } => Some((*bytes, *dpus)),
            _ => None,
        })
        .collect();
    assert_eq!(scatters, vec![(48, 3)]);
}
