//! Validates the harness's central measurement claim: the simulated time
//! components are *exactly linear* in dataset size, episodes (kernel) and
//! synchronization rounds (inter-PIM), so a reduced-scale run extrapolates
//! exactly to what a larger run would report.

use swiftrl::core::breakdown::TimeBreakdown;
use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;
use swiftrl_bench::Extrapolation;

fn run(data: &ExperienceDataset, episodes: u32, tau: u32) -> TimeBreakdown {
    PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults()
            .with_dpus(8)
            .with_episodes(episodes)
            .with_tau(tau),
    )
    .unwrap()
    .run(data)
    .unwrap()
    .breakdown
}

fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    let rel = (a - b).abs() / b.abs().max(1e-12);
    assert!(rel < tol, "{what}: extrapolated {a} vs direct {b} (rel {rel:.4})");
}

#[test]
fn small_run_extrapolates_to_large_run() {
    let mut env = FrozenLake::slippery_4x4();
    // The large dataset's prefix IS the small dataset (same collection
    // seed), so the workloads are directly comparable; sizes are chosen
    // as multiples of 8 DPUs × 32-record batches to avoid rounding noise.
    let large = collect_random(&mut env, 16_384, 7);
    let mut small = ExperienceDataset::new(
        large.env_name(),
        large.num_states(),
        large.num_actions(),
    );
    small.extend(large.transitions()[..4_096].iter().copied());

    let tau = 25;
    let small_b = run(&small, 50, tau); // 2 rounds
    let large_b = run(&large, 200, tau); // 8 rounds

    let extra = Extrapolation::new(large.len(), small.len(), 200, 50, tau);
    let predicted = extra.apply(&small_b);

    // Kernel time: linear in dataset × episodes. The small and large
    // datasets have different *contents* beyond the shared prefix, and
    // RAN-free INT32 SEQ cost is content-dependent only through the
    // emulated multiply early-exit, which the calibrated charging mode
    // does not use — so this should be extremely tight.
    assert_close(predicted.pim_kernel_s, large_b.pim_kernel_s, 0.02, "kernel");
    // Inter-PIM: linear in intermediate rounds.
    assert_close(predicted.inter_pim_s, large_b.inter_pim_s, 0.02, "inter-PIM");
    // CPU→PIM: program load constant + dataset-linear part.
    assert_close(predicted.cpu_pim_s, large_b.cpu_pim_s, 0.02, "CPU-PIM");
    // PIM→CPU: scale-invariant.
    assert_close(predicted.pim_cpu_s, large_b.pim_cpu_s, 0.02, "PIM-CPU");
}

#[test]
fn extrapolation_is_identity_at_equal_scale() {
    let mut env = FrozenLake::slippery_4x4();
    let data = collect_random(&mut env, 2_000, 3);
    let b = run(&data, 50, 25);
    let same = Extrapolation::new(data.len(), data.len(), 50, 50, 25).apply(&b);
    assert_eq!(b, same);
}
