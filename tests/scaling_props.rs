//! Property tests on the system-level timing behaviour: strong scaling,
//! monotonicity, and invariances that the paper's figures rely on.

use proptest::prelude::*;
use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;

fn dataset(n: usize) -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, n, 13)
}

fn kernel_seconds(data: &ExperienceDataset, dpus: usize, episodes: u32) -> f64 {
    PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(episodes)
            .with_tau(episodes),
    )
    .unwrap()
    .run(data)
    .unwrap()
    .breakdown
    .pim_kernel_s
}

#[test]
fn strong_scaling_near_linear() {
    let data = dataset(8_000);
    let t1 = kernel_seconds(&data, 1, 4);
    let t8 = kernel_seconds(&data, 8, 4);
    let t64 = kernel_seconds(&data, 64, 4);
    let s8 = t1 / t8;
    let s64 = t1 / t64;
    assert!(
        (6.0..=8.5).contains(&s8),
        "8-DPU speedup off linear: {s8:.2}"
    );
    assert!(
        (45.0..=68.0).contains(&s64),
        "64-DPU speedup off linear: {s64:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kernel_time_monotone_in_dpus(n in 500usize..3_000, seed in 0u64..100) {
        let mut env = FrozenLake::slippery_4x4();
        let data = collect_random(&mut env, n, seed);
        let t2 = kernel_seconds(&data, 2, 2);
        let t4 = kernel_seconds(&data, 4, 2);
        let t8 = kernel_seconds(&data, 8, 2);
        prop_assert!(t4 <= t2, "t4 {t4} > t2 {t2}");
        prop_assert!(t8 <= t4, "t8 {t8} > t4 {t4}");
    }

    #[test]
    fn kernel_time_linear_in_episodes(n in 500usize..2_000) {
        let data = dataset(n);
        let t2 = kernel_seconds(&data, 4, 2);
        let t4 = kernel_seconds(&data, 4, 4);
        let ratio = t4 / t2;
        prop_assert!((1.9..=2.1).contains(&ratio), "episodes not linear: {ratio}");
    }

    #[test]
    fn fp32_always_slower_than_int32(n in 300usize..1_500, dpus in 1usize..8) {
        let data = dataset(n);
        let run = |spec| {
            PimRunner::new(
                spec,
                RunConfig::paper_defaults()
                    .with_dpus(dpus)
                    .with_episodes(2)
                    .with_tau(2),
            )
            .unwrap()
            .run(&data)
            .unwrap()
            .breakdown
            .pim_kernel_s
        };
        let fp = run(WorkloadSpec::q_learning_seq_fp32());
        let ix = run(WorkloadSpec::q_learning_seq_int32());
        prop_assert!(fp > 2.0 * ix, "fp {fp} vs int {ix}");
    }
}
