//! Runtime-sanitizer tests: the sanitizer catches seeded bugs (tasklet
//! races, uninitialized-WRAM reads, misaligned DMA, host access during a
//! launch window), stays silent on the paper's twelve clean variants, and
//! never perturbs simulation results — sanitized and unsanitized runs are
//! bit-identical in Q-tables and cycle counts.

use proptest::prelude::*;
use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::{PimRunner, RunOutcome};
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::ExperienceDataset;
use swiftrl::pim::config::PimConfig;
use swiftrl::pim::host::PimSystem;
use swiftrl::pim::kernel::{DpuContext, Kernel, KernelError};
use swiftrl::pim::sanitize::{FindingKind, SanitizeLevel};

fn dataset(n: usize, seed: u64) -> ExperienceDataset {
    let mut env = FrozenLake::slippery_4x4();
    collect_random(&mut env, n, seed)
}

fn run_variant(
    spec: WorkloadSpec,
    data: &ExperienceDataset,
    level: SanitizeLevel,
    episodes: u32,
    dpus: usize,
) -> RunOutcome {
    let platform = PimConfig::builder().dpus(dpus).sanitize(level).build();
    PimRunner::with_platform(
        spec,
        RunConfig::paper_defaults()
            .with_dpus(dpus)
            .with_episodes(episodes)
            .with_tau(episodes),
        platform,
    )
    .unwrap()
    .run(data)
    .unwrap()
}

/// Two tasklets write the same WRAM word without synchronization.
struct RacyKernel;
impl Kernel for RacyKernel {
    fn tasklets(&self) -> usize {
        2
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let t = ctx.tasklet_id() as u32;
        ctx.wram_write_u32(0, t + 1)?;
        Ok(())
    }
}

/// Two tasklets write disjoint WRAM words — a clean partitioning.
struct PartitionedKernel;
impl Kernel for PartitionedKernel {
    fn tasklets(&self) -> usize {
        2
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let t = ctx.tasklet_id();
        ctx.wram_write_u32(4 * t, 7)?;
        Ok(())
    }
}

/// Reads a WRAM word nothing ever wrote.
struct UninitReadKernel;
impl Kernel for UninitReadKernel {
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
        let v = ctx.wram_read_u32(128)?;
        ctx.charge_alu(u64::from(v) + 1);
        Ok(())
    }
}

#[test]
fn race_detector_flags_ww_conflict_at_full() {
    let platform = PimConfig::builder()
        .dpus(1)
        .sanitize(SanitizeLevel::Full)
        .build();
    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(1).unwrap();
    set.launch(&RacyKernel).unwrap();

    let report = set.sanitizer_report();
    assert_eq!(report.counts(), [0, 0, 1, 0], "findings: {report}");
    match &report.findings[0].kind {
        FindingKind::TaskletRace {
            tasklet_a,
            tasklet_b,
            start,
            end,
            write_write,
            ..
        } => {
            assert_eq!((*tasklet_a, *tasklet_b), (0, 1));
            assert_eq!((*start, *end), (0, 4));
            assert!(*write_write, "both tasklets wrote");
        }
        other => panic!("expected a TaskletRace, got {other:?}"),
    }
}

#[test]
fn race_detector_accepts_disjoint_tasklet_writes() {
    let platform = PimConfig::builder()
        .dpus(1)
        .sanitize(SanitizeLevel::Full)
        .build();
    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(1).unwrap();
    set.launch(&PartitionedKernel).unwrap();
    assert!(set.sanitizer_report().is_clean());
}

#[test]
fn memory_level_skips_race_detection() {
    // SanitizeLevel::Memory tracks initialization and alignment only;
    // the racy kernel passes without findings.
    let platform = PimConfig::builder()
        .dpus(1)
        .sanitize(SanitizeLevel::Memory)
        .build();
    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(1).unwrap();
    set.launch(&RacyKernel).unwrap();
    assert!(set.sanitizer_report().is_clean());
}

#[test]
fn uninitialized_wram_read_is_caught() {
    let platform = PimConfig::builder()
        .dpus(1)
        .sanitize(SanitizeLevel::Memory)
        .build();
    let mut system = PimSystem::new(platform);
    let mut set = system.alloc(1).unwrap();
    set.launch(&UninitReadKernel).unwrap();

    let report = set.sanitizer_report();
    assert_eq!(report.counts(), [1, 0, 0, 0], "findings: {report}");
    assert!(matches!(
        report.findings[0].kind,
        FindingKind::UninitWramRead { offset: 128, len: 4 }
    ));
    // The same read after a write is clean.
    set.reset_sanitizer_report();
    struct InitThenRead;
    impl Kernel for InitThenRead {
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), KernelError> {
            ctx.wram_write_u32(128, 9)?;
            let v = ctx.wram_read_u32(128)?;
            ctx.charge_alu(u64::from(v));
            Ok(())
        }
    }
    set.launch(&InitThenRead).unwrap();
    assert!(set.sanitizer_report().is_clean());
}

#[test]
fn q_seq_fp32_training_is_sanitizer_clean_at_full() {
    let data = dataset(2_000, 42);
    let out = run_variant(
        WorkloadSpec::q_learning_seq_fp32(),
        &data,
        SanitizeLevel::Full,
        8,
        4,
    );
    assert!(
        out.sanitizer.is_clean(),
        "Q-SEQ-FP32 raised findings: {}",
        out.sanitizer
    );
    assert_eq!(out.sanitizer.sanitized_launches, 1);
}

#[test]
fn all_twelve_paper_variants_are_sanitizer_clean() {
    let data = dataset(1_200, 7);
    for spec in WorkloadSpec::paper_variants() {
        let out = run_variant(spec, &data, SanitizeLevel::Full, 4, 2);
        assert!(
            out.sanitizer.is_clean(),
            "{spec} raised findings: {}",
            out.sanitizer
        );
    }
}

#[test]
fn sanitized_run_is_bit_identical_to_unsanitized() {
    let data = dataset(2_000, 42);
    for spec in [
        WorkloadSpec::q_learning_seq_fp32(),
        WorkloadSpec::q_learning_seq_int32(),
    ] {
        let off = run_variant(spec, &data, SanitizeLevel::Off, 8, 4);
        let full = run_variant(spec, &data, SanitizeLevel::Full, 8, 4);
        assert_eq!(off.q_table, full.q_table, "{spec}: Q-tables diverged");
        assert_eq!(
            off.breakdown.pim_kernel_s.to_bits(),
            full.breakdown.pim_kernel_s.to_bits(),
            "{spec}: kernel time diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Observation-only invariant: for any workload shape, enabling the
    /// sanitizer changes nothing about the simulated results.
    #[test]
    fn sanitizer_never_perturbs_results(
        n in 300usize..1_500,
        seed in 0u64..50,
        dpus in 1usize..5,
        variant in 0usize..12,
    ) {
        let data = dataset(n, seed);
        let spec = WorkloadSpec::paper_variants()[variant];
        let off = run_variant(spec, &data, SanitizeLevel::Off, 4, dpus);
        let full = run_variant(spec, &data, SanitizeLevel::Full, 4, dpus);
        prop_assert!(full.sanitizer.is_clean(), "{spec}: {}", full.sanitizer);
        prop_assert_eq!(&off.q_table, &full.q_table);
        prop_assert_eq!(
            off.breakdown.pim_kernel_s.to_bits(),
            full.breakdown.pim_kernel_s.to_bits()
        );
    }
}
