//! Reduced-scale training-quality bands (§4.2): the PIM-trained policies
//! must reach the paper's quality regime on both environments, and the
//! τ-averaged distributed result must not lag the single-learner CPU
//! reference by much.

use swiftrl::core::config::{RunConfig, WorkloadSpec};
use swiftrl::core::runner::PimRunner;
use swiftrl::env::collect::collect_random;
use swiftrl::env::frozen_lake::FrozenLake;
use swiftrl::env::taxi::Taxi;
use swiftrl::rl::eval::evaluate_greedy;
use swiftrl::rl::qlearning::{train_offline, QLearningConfig};
use swiftrl::rl::sampling::SamplingStrategy;

#[test]
fn frozen_lake_reaches_paper_band() {
    // Paper: 0.70-0.74 mean reward. The slippery 4x4 optimum under the
    // 100-step limit is ~0.74, so we require at least 0.6 at this
    // reduced scale.
    let mut env = FrozenLake::slippery_4x4();
    let dataset = collect_random(&mut env, 100_000, 42);
    let outcome = PimRunner::new(
        WorkloadSpec::q_learning_seq_fp32(),
        RunConfig::paper_defaults()
            .with_dpus(64)
            .with_episodes(200)
            .with_tau(50),
    )
    .unwrap()
    .run(&dataset)
    .unwrap();
    let pim = evaluate_greedy(&mut env, &outcome.q_table, 1_000, 1).mean_reward;
    assert!(pim > 0.6, "PIM FrozenLake quality {pim:.3} below band");

    let cpu_q = train_offline(
        &dataset,
        &QLearningConfig::paper_defaults().with_episodes(200),
        SamplingStrategy::Sequential,
        7,
    );
    let cpu = evaluate_greedy(&mut env, &cpu_q, 1_000, 1).mean_reward;
    // Paper: PIM "relatively same or slightly better than CPU".
    assert!(
        pim > cpu - 0.1,
        "PIM ({pim:.3}) lags CPU ({cpu:.3}) beyond tolerance"
    );
}

#[test]
fn taxi_reaches_positive_reward_with_int32() {
    // Near-optimal taxi play scores ~ +8; partially trained policies in
    // the paper score around -8. Anything clearly positive means the
    // policy solves the task; random play scores around -770.
    let mut env = Taxi::new();
    let dataset = collect_random(&mut env, 400_000, 7);
    let outcome = PimRunner::new(
        WorkloadSpec::q_learning_seq_int32(),
        RunConfig::paper_defaults()
            .with_dpus(100)
            .with_episodes(400)
            .with_tau(50),
    )
    .unwrap()
    .run(&dataset)
    .unwrap();
    let stats = evaluate_greedy(&mut env, &outcome.q_table, 500, 3);
    assert!(
        stats.mean_reward > 0.0,
        "taxi INT32 policy quality {:.2}",
        stats.mean_reward
    );
}
