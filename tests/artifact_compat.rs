//! Backward compatibility of JSON artifacts across schema growth.
//!
//! `BENCH_SIM_THROUGHPUT.json` in the repository root was written by the
//! hand-formatted writer that predates the shared telemetry JSON
//! builder; the telemetry parser must accept it structurally, and the
//! rebuilt `sim_throughput` writer must keep emitting the same keys.

use swiftrl::telemetry::json::parse;
use swiftrl::telemetry::Json;

/// Recursively asserts that every number in `doc` is finite. JSON has
/// no NaN/Infinity literal, but `1e999` (and friends) parse to `inf`,
/// and an unguarded ratio in a bench writer could smuggle one into a
/// checked-in artifact; `path` names the offending value on failure.
fn assert_finite_numbers(doc: &Json, path: &str) {
    match doc {
        Json::Num(n) => assert!(n.is_finite(), "non-finite number at {path}: {n}"),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                assert_finite_numbers(item, &format!("{path}[{i}]"));
            }
        }
        Json::Obj(fields) => {
            for (key, value) in fields {
                assert_finite_numbers(value, &format!("{path}.{key}"));
            }
        }
        _ => {}
    }
}

/// Every checked-in benchmark artifact is free of non-finite numbers:
/// division-by-zero guards in the writers emit `null`, never NaN/inf.
#[test]
fn checked_in_artifacts_contain_only_finite_numbers() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    for entry in std::fs::read_dir(root).expect("repo root") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        let doc = parse(&text).expect("artifact parses");
        assert_finite_numbers(&doc, name);
        checked += 1;
    }
    assert!(checked >= 2, "expected at least two BENCH_*.json artifacts");
}

/// The parser accepts an overflowing float literal as infinity — which
/// is exactly what the finite-number walk must reject.
#[test]
fn finite_walk_rejects_overflowing_literals() {
    let doc = parse(r#"{"ratio": 1e999}"#).expect("parses");
    let n = doc.get("ratio").and_then(Json::as_f64).expect("number");
    assert!(!n.is_finite());
    let result = std::panic::catch_unwind(|| assert_finite_numbers(&doc, "synthetic"));
    assert!(result.is_err(), "non-finite number must be rejected");
}

/// The checked-in, pre-telemetry artifact parses and carries the schema
/// the rebuilt writer still emits.
#[test]
fn checked_in_sim_throughput_artifact_still_parses() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_SIM_THROUGHPUT.json");
    let text = std::fs::read_to_string(&path).expect("checked-in BENCH_SIM_THROUGHPUT.json");
    let doc = parse(&text).expect("artifact parses");

    assert_eq!(
        doc.get("benchmark").and_then(Json::as_str),
        Some("sim_throughput")
    );
    for key in ["transitions", "episodes", "tau", "dpus"] {
        assert!(
            doc.get(key).and_then(Json::as_u64).is_some(),
            "missing or non-integer {key}"
        );
    }
    let entries = doc.get("entries").and_then(Json::as_array).expect("entries");
    assert!(!entries.is_empty());
    for entry in entries {
        for key in ["env", "figure", "workload", "tier"] {
            assert!(entry.get(key).and_then(Json::as_str).is_some(), "{key}");
        }
        for key in [
            "host_kernel_wall_s",
            "host_wall_s",
            "sim_kernel_s",
            "host_kernel_wall_per_sim_kernel_s",
        ] {
            assert!(entry.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
    }
    for key in ["speedups", "aggregates"] {
        let arr = doc.get(key).and_then(Json::as_array).unwrap_or_default();
        assert!(!arr.is_empty(), "{key} empty");
    }
}

/// The checked-in fleet-scaling artifact parses, covers the paper's
/// 2,524-DPU fleet, and keeps the lazy-bank contract: peak materialized
/// bank bytes stay under 10% of the eager `dpus × 64 MiB` footprint at
/// every sweep point.
#[test]
fn checked_in_fleet_scaling_artifact_still_parses() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_FLEET_SCALING.json");
    let text = std::fs::read_to_string(&path).expect("checked-in BENCH_FLEET_SCALING.json");
    let doc = parse(&text).expect("artifact parses");

    assert_eq!(
        doc.get("benchmark").and_then(Json::as_str),
        Some("fleet_scaling")
    );
    let points = doc.get("points").and_then(Json::as_array).expect("points");
    assert!(!points.is_empty());
    let mut saw_paper_fleet = false;
    for point in points {
        let dpus = point.get("dpus").and_then(Json::as_u64).expect("dpus");
        saw_paper_fleet |= dpus == 2_524;
        let peak = point
            .get("bank_peak_bytes")
            .and_then(Json::as_u64)
            .expect("bank_peak_bytes");
        let eager = point
            .get("eager_bank_bytes")
            .and_then(Json::as_u64)
            .expect("eager_bank_bytes");
        assert!(
            peak > 0 && peak * 10 < eager,
            "lazy banks past 10% of the eager footprint at {dpus} DPUs"
        );
        for key in ["host_wall_s", "sim_kernel_s", "sim_total_s", "lazy_fraction"] {
            assert!(point.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
    }
    assert!(saw_paper_fleet, "sweep missing the 2,524-DPU point");
}

/// An old-schema snippet — an artifact written before fields that exist
/// today — still parses; unknown-to-old keys are simply absent, which is
/// exactly what the container-level `#[serde(default)]` on
/// `LaunchStats`/`SystemStats`/`TimeBreakdown` guarantees on the serde
/// side: missing fields fill with defaults instead of failing.
#[test]
fn old_schema_snippet_parses_with_missing_fields() {
    // A SystemStats as serialized before the fault-injection counters
    // (faulted_launches, faulted_kernel_seconds, injected_transfer_faults)
    // and before program_load_seconds existed.
    let old = r#"{
        "launches": 3,
        "last_kernel_seconds": 0.25,
        "kernel_seconds": 0.75,
        "cpu_to_pim_seconds": 0.1,
        "pim_to_cpu_seconds": 0.05,
        "cpu_to_pim_bytes": 4096,
        "pim_to_cpu_bytes": 2048
    }"#;
    let doc = parse(old).expect("old snippet parses");
    assert_eq!(doc.get("launches").and_then(Json::as_u64), Some(3));
    assert!(doc.get("faulted_launches").is_none(), "field postdates snippet");
}

/// Defaults are what `serde(default)` fills absent fields with — pin
/// that the zero-value story stays sane for the stats types the
/// artifacts embed.
#[test]
fn stats_defaults_are_all_zero() {
    let launch = swiftrl::pim::stats::LaunchStats::default();
    assert_eq!(launch.sanitizer_findings, 0);
    assert!(launch.faulted_dpus.is_empty());
    let sys = swiftrl::pim::stats::SystemStats::default();
    assert_eq!(sys.faulted_launches, 0);
    assert_eq!(sys.injected_transfer_faults, 0);
    let b = swiftrl::core::breakdown::TimeBreakdown::default();
    assert_eq!(b.total_seconds(), 0.0);
    assert_eq!(b.program_load_s, 0.0);
}
