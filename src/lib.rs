//! # SwiftRL (reproduction)
//!
//! A from-scratch Rust reproduction of *SwiftRL: Towards Efficient
//! Reinforcement Learning on Real Processing-In-Memory Systems*
//! (Gogineni et al., ISPASS 2024): offline tabular Q-learning and SARSA
//! accelerated on an UPMEM-class processing-in-memory platform,
//! reproduced on a cycle-approximate simulator.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`pim`] — the PIM platform simulator (DPUs, MRAM/WRAM, emulated
//!   arithmetic, host transfers);
//! * [`env`](mod@env) — Gym-faithful FrozenLake / Taxi / CliffWalking and offline
//!   dataset collection;
//! * [`rl`] — tabular RL substrate (Q-tables, update rules, sampling
//!   strategies, policies, evaluation);
//! * [`core`] — the SwiftRL system itself (kernels, partitioning,
//!   τ-periodic synchronization, multi-agent training, time breakdowns);
//! * [`baselines`] — CPU-V1/CPU-V2 baselines, CPU/GPU analytical models,
//!   Table 1 specs and the Figure 2 roofline;
//! * [`telemetry`] — deterministic run telemetry: typed event stream,
//!   metrics snapshots and Chrome/Perfetto trace export.
//!
//! ## Quickstart
//!
//! ```rust
//! use swiftrl::core::config::{RunConfig, WorkloadSpec};
//! use swiftrl::core::runner::PimRunner;
//! use swiftrl::env::collect::collect_random;
//! use swiftrl::env::frozen_lake::FrozenLake;
//! use swiftrl::rl::eval::evaluate_greedy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Collect an offline dataset with a random behaviour policy.
//! let mut env = FrozenLake::slippery_4x4();
//! let dataset = collect_random(&mut env, 10_000, 1);
//!
//! // 2. Train Q-learning on 8 simulated PIM cores with the paper's
//! //    INT32 fixed-point optimization.
//! let outcome = PimRunner::new(
//!     WorkloadSpec::q_learning_seq_int32(),
//!     RunConfig::paper_defaults().with_dpus(8).with_episodes(100),
//! )?
//! .run(&dataset)?;
//!
//! // 3. Evaluate the learned policy and inspect the time breakdown.
//! let stats = evaluate_greedy(&mut env, &outcome.q_table, 100, 7);
//! println!("mean reward {:.3}", stats.mean_reward);
//! println!("{}", outcome.breakdown);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use swiftrl_baselines as baselines;
pub use swiftrl_core as core;
pub use swiftrl_env as env;
pub use swiftrl_pim as pim;
pub use swiftrl_rl as rl;
pub use swiftrl_telemetry as telemetry;
